//! Regenerates the paper's fig10a experiment. Usage: `fig10a [--scale smoke|default|paper]`.
fn main() {
    mwsj_bench::experiments::fig10a::main(mwsj_bench::Scale::from_args());
}
