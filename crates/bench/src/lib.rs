//! Benchmark harness regenerating every figure of the paper's evaluation
//! (§6), plus parameter-tuning and ablation studies.
//!
//! Each experiment lives in [`experiments`] and is exposed both as a
//! library function (used by the `all_experiments` orchestrator and the
//! integration tests) and as a standalone binary (`fig10a`, `fig10b`,
//! `fig10c`, `fig11`, `sea_tuning`, `ablations`).
//!
//! All binaries accept `--scale smoke|default|paper`:
//!
//! * `smoke` — seconds-long sanity run (CI);
//! * `default` — minutes-long run at N = 10,000 objects per dataset that
//!   reproduces the *shape* of every figure;
//! * `paper` — the full EDBT 2002 setting (N = 100,000, `10·n`-second
//!   budgets, 100 repetitions): hours of wall-clock time.
//!
//! Results are printed as the paper's tables and appended as CSV under
//! `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod io;
mod record;
mod scale;
pub mod suite;

pub use io::{write_csv, Table};
pub use record::Recorder;
pub use scale::Scale;
pub use suite::{
    pinned_suite, pinned_suite_large, run_pinned_suite, run_suite, BenchTier, SuiteAlgo, SuiteCase,
    DEFAULT_REPS,
};

use mwsj_core::Instance;
use mwsj_core::{
    Gils, GilsConfig, Ils, IlsConfig, NaiveGa, NaiveGaConfig, NaiveLocalSearch, ParallelPortfolio,
    PortfolioConfig, PortfolioOutcome, RunOutcome, Sea, SeaConfig, SearchBudget, SearchContext,
    SimulatedAnnealing,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The anytime heuristics the experiments compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Indexed local search (§3).
    Ils,
    /// Guided indexed local search (§4).
    Gils,
    /// Spatial evolutionary algorithm (§5).
    Sea,
    /// Local search with random re-instantiation (ablation baseline).
    NaiveLs,
    /// GA with random crossover/mutation (ablation baseline).
    NaiveGa,
    /// Simulated annealing (ablation baseline).
    Sa,
}

impl Algo {
    /// The three algorithms of the paper's Fig. 10.
    pub const PAPER: [Algo; 3] = [Algo::Ils, Algo::Gils, Algo::Sea];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Ils => "ILS",
            Algo::Gils => "GILS",
            Algo::Sea => "SEA",
            Algo::NaiveLs => "naive-LS",
            Algo::NaiveGa => "naive-GA",
            Algo::Sa => "SA",
        }
    }

    /// Runs the algorithm on `instance` with a per-run RNG seed.
    pub fn run(&self, instance: &Instance, budget: &SearchBudget, seed: u64) -> RunOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        self.search(instance, &SearchContext::local(*budget), &mut rng)
    }

    /// Runs the algorithm under an explicit [`SearchContext`] (budget plus
    /// observability handle).
    pub fn search(&self, instance: &Instance, ctx: &SearchContext, rng: &mut StdRng) -> RunOutcome {
        match self {
            Algo::Ils => Ils::new(IlsConfig::default()).search(instance, ctx, rng),
            Algo::Gils => Gils::new(GilsConfig::default()).search(instance, ctx, rng),
            Algo::Sea => Sea::new(SeaConfig::default_for(instance)).search(instance, ctx, rng),
            Algo::NaiveLs => NaiveLocalSearch::default().search(instance, ctx, rng),
            Algo::NaiveGa => NaiveGa::new(NaiveGaConfig::default()).search(instance, ctx, rng),
            Algo::Sa => SimulatedAnnealing::default().search(instance, ctx, rng),
        }
    }

    /// Runs the algorithm as a [`ParallelPortfolio`] of `restarts` seeded
    /// restarts on `threads` worker threads (`0` = all cores), sharing
    /// `budget` across the restarts.
    pub fn run_portfolio(
        &self,
        instance: &Instance,
        budget: &SearchBudget,
        master_seed: u64,
        restarts: usize,
        threads: usize,
    ) -> PortfolioOutcome {
        let config = PortfolioConfig::new(restarts, threads);
        match self {
            Algo::Ils => ParallelPortfolio::new(Ils::new(IlsConfig::default()), config).run(
                instance,
                budget,
                master_seed,
            ),
            Algo::Gils => ParallelPortfolio::new(Gils::new(GilsConfig::default()), config).run(
                instance,
                budget,
                master_seed,
            ),
            Algo::Sea => ParallelPortfolio::new(Sea::new(SeaConfig::default_for(instance)), config)
                .run(instance, budget, master_seed),
            Algo::NaiveLs => ParallelPortfolio::new(NaiveLocalSearch::default(), config).run(
                instance,
                budget,
                master_seed,
            ),
            Algo::NaiveGa => ParallelPortfolio::new(NaiveGa::new(NaiveGaConfig::default()), config)
                .run(instance, budget, master_seed),
            Algo::Sa => ParallelPortfolio::new(SimulatedAnnealing::default(), config).run(
                instance,
                budget,
                master_seed,
            ),
        }
    }
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (0 for fewer than two samples).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[1.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn algo_names_are_distinct() {
        let names: std::collections::HashSet<_> = [
            Algo::Ils,
            Algo::Gils,
            Algo::Sea,
            Algo::NaiveLs,
            Algo::NaiveGa,
            Algo::Sa,
        ]
        .iter()
        .map(|a| a.name())
        .collect();
        assert_eq!(names.len(), 6);
    }
}
