//! Experiment scales: smoke / default / paper.

use std::time::Duration;

/// How big an experiment run should be.
///
/// The paper's hardware budget (`10·n` seconds per execution, 100
/// repetitions, N = 100,000 objects) totals days of compute; `Scale`
/// shrinks N, repetitions and time budgets together so the *hard region*
/// property is preserved (densities are re-solved for the chosen N) while
/// the wall-clock cost drops to CI-friendly levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds: tiny datasets, one repetition. Verifies the harness.
    Smoke,
    /// Minutes: N = 10,000, a few repetitions, compressed budgets —
    /// reproduces the figures' shapes.
    Default,
    /// The full EDBT 2002 setting. Hours.
    Paper,
}

impl Scale {
    /// Parses `--scale <s>` / `--scale=<s>` from CLI args, defaulting to
    /// [`Scale::Default`].
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for (i, a) in args.iter().enumerate() {
            let value = if let Some(v) = a.strip_prefix("--scale=") {
                Some(v.to_string())
            } else if a == "--scale" {
                args.get(i + 1).cloned()
            } else {
                None
            };
            if let Some(v) = value {
                return Scale::parse(&v)
                    .unwrap_or_else(|| panic!("unknown scale '{v}' (smoke|default|paper)"));
            }
        }
        Scale::Default
    }

    /// Parses a scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(Scale::Smoke),
            "default" => Some(Scale::Default),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Objects per dataset (the paper's N = 100,000).
    pub fn cardinality(&self) -> usize {
        match self {
            Scale::Smoke => 1_000,
            Scale::Default => 10_000,
            Scale::Paper => 100_000,
        }
    }

    /// Repetitions per measurement point (the paper averages 100).
    pub fn repetitions(&self) -> usize {
        match self {
            Scale::Smoke => 1,
            Scale::Default => 5,
            Scale::Paper => 100,
        }
    }

    /// Scales the paper's wall-clock budgets (e.g. `10·n` seconds becomes
    /// `10·n · time_factor()`).
    pub fn time_factor(&self) -> f64 {
        match self {
            Scale::Smoke => 0.002,
            Scale::Default => 0.02,
            Scale::Paper => 1.0,
        }
    }

    /// The paper's per-query budget `10·n` seconds, scaled.
    pub fn query_budget(&self, n_vars: usize) -> Duration {
        Duration::from_secs_f64(10.0 * n_vars as f64 * self.time_factor())
    }

    /// Query sizes for Fig. 10a / Fig. 11 (the paper uses 5..=25 step 5;
    /// smaller scales trim the top end to keep SEA populations meaningful).
    pub fn query_sizes(&self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![3, 5],
            Scale::Default => vec![5, 10, 15, 20, 25],
            Scale::Paper => vec![5, 10, 15, 20, 25],
        }
    }

    /// Display name (also used in CSV output).
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Default => "default",
            Scale::Paper => "paper",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_names() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("DEFAULT"), Some(Scale::Default));
        assert_eq!(Scale::parse("Paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn paper_scale_matches_publication() {
        let s = Scale::Paper;
        assert_eq!(s.cardinality(), 100_000);
        assert_eq!(s.repetitions(), 100);
        assert_eq!(s.query_budget(15), Duration::from_secs(150));
    }

    #[test]
    fn budgets_shrink_with_scale() {
        assert!(Scale::Smoke.query_budget(15) < Scale::Default.query_budget(15));
        assert!(Scale::Default.query_budget(15) < Scale::Paper.query_budget(15));
    }
}
