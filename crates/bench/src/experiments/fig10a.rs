//! **Fig. 10a** — solution quality vs. number of query variables.
//!
//! For chains and cliques over n ∈ {5, 10, 15, 20, 25} datasets at the
//! hard-region density (expected solutions = 1), each algorithm runs for
//! `10·n` seconds (scaled) and the best similarity is averaged over the
//! repetitions. The paper's figure also prints the density row in italics;
//! here it is a table column.

use crate::experiments::build_instance;
use crate::{mean, write_csv, Algo, Recorder, Scale, Table};
use mwsj_core::SearchBudget;
use mwsj_datagen::QueryShape;

/// Runs the experiment and returns the result table
/// (`shape, n, density, ILS, GILS, SEA`).
pub fn run(scale: Scale) -> Table {
    run_recorded(scale, &Recorder::disabled())
}

/// Like [`run`], additionally streaming per-run events and metrics through
/// `rec`.
pub fn run_recorded(scale: Scale, rec: &Recorder) -> Table {
    let mut table = Table::new(vec!["shape", "n", "density", "ILS", "GILS", "SEA"]);
    for shape in [QueryShape::Chain, QueryShape::Clique] {
        for &n in &scale.query_sizes() {
            let (instance, _, density) = build_instance(
                shape,
                n,
                scale.cardinality(),
                1.0,
                false,
                0xA11CE + n as u64,
            );
            let budget = SearchBudget::time(scale.query_budget(n));
            let mut cells = vec![
                shape.name().to_string(),
                n.to_string(),
                format!("{density:.4}"),
            ];
            for algo in Algo::PAPER {
                let sims: Vec<f64> = (0..scale.repetitions())
                    .map(|rep| {
                        rec.run(algo, &instance, &budget, 1000 + rep as u64)
                            .best_similarity
                    })
                    .collect();
                cells.push(format!("{:.3}", mean(&sims)));
            }
            table.row(cells);
            eprintln!("fig10a: {} n={n} done", shape.name());
        }
    }
    table
}

/// Runs, prints and persists the experiment.
pub fn main(scale: Scale) {
    println!(
        "Fig. 10a — similarity vs. number of variables (scale: {}, N = {}, {} reps, budget 10·n·{}s)",
        scale.name(),
        scale.cardinality(),
        scale.repetitions(),
        scale.time_factor()
    );
    let rec = Recorder::create("fig10a");
    let table = run_recorded(scale, &rec);
    println!("{}", table.render());
    let path = write_csv("fig10a.csv", &table.to_csv()).expect("write results");
    println!("CSV written to {}", path.display());
    if let Some(metrics) = rec.finish() {
        println!("metrics JSONL written to {}", metrics.display());
    }
}
