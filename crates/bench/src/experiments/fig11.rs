//! **Fig. 11** — systematic search with and without heuristic seeding.
//!
//! Clique datasets with exactly one (planted) exact solution. Three
//! methods race to retrieve it: plain IBB, ILS(1 s)+IBB, and
//! SEA(`10·n` s)+IBB. The paper reports the total retrieval time averaged
//! over 10 executions, with plain IBB needing >100 minutes at n = 5 and
//! days at n = 25 — so the harness caps IBB wall-clock and prints
//! `>cap` for timeouts; the *ratio* between seeded and unseeded runs is
//! the reproduced result.

use crate::experiments::build_instance;
use crate::{mean, write_csv, Algo, Recorder, Scale, Table};
use mwsj_core::{Ibb, IbbConfig, SearchBudget, SearchContext, TwoStep, TwoStepConfig};
use mwsj_datagen::QueryShape;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Per-scale settings: query sizes, dataset cardinality, IBB cap.
fn settings(scale: Scale) -> (Vec<usize>, usize, Duration, usize) {
    match scale {
        // (sizes, cardinality, ibb_cap, reps)
        Scale::Smoke => (vec![3], 300, Duration::from_secs(5), 1),
        Scale::Default => (vec![3, 4, 5], 2_000, Duration::from_secs(60), 3),
        Scale::Paper => (
            vec![5, 10, 15, 20, 25],
            100_000,
            Duration::from_secs(6 * 3600),
            10,
        ),
    }
}

/// Runs the experiment; rows are
/// `(n, IBB_seconds, ILS+IBB_seconds, SEA+IBB_seconds)` where a leading
/// `>` marks a timeout.
pub fn run(scale: Scale) -> Table {
    run_recorded(scale, &Recorder::disabled())
}

/// Like [`run`], additionally streaming per-run events and metrics through
/// `rec`.
pub fn run_recorded(scale: Scale, rec: &Recorder) -> Table {
    let (sizes, cardinality, ibb_cap, reps) = settings(scale);
    let mut table = Table::new(vec!["n", "IBB", "ILS+IBB", "SEA+IBB"]);
    for &n in &sizes {
        let (instance, planted, _) = build_instance(
            QueryShape::Clique,
            n,
            cardinality,
            1.0,
            true,
            0xF16 + n as u64,
        );
        assert!(planted.is_some());

        // --- Plain IBB (deterministic: one run). ---
        let ibb_budget = SearchBudget::time(ibb_cap);
        rec.start("IBB", &instance, &ibb_budget, 0);
        // Nested so the recorder's `end` below stays the single `run_end`.
        let ctx = SearchContext::local(ibb_budget)
            .with_obs(rec.obs().clone())
            .nested();
        let outcome = Ibb::new(IbbConfig::new()).search(&instance, &ctx);
        rec.end(&outcome);
        let ibb_cell = if outcome.is_exact() {
            format!("{:.2}", outcome.stats.elapsed.as_secs_f64())
        } else {
            format!(">{:.0}", ibb_cap.as_secs_f64())
        };
        eprintln!("fig11: n={n} IBB done ({ibb_cell})");

        // --- Heuristic + IBB. ---
        let mut cells = vec![n.to_string(), ibb_cell];
        for algo in [Algo::Ils, Algo::Sea] {
            let mut times = Vec::new();
            let mut timeouts = 0usize;
            for rep in 0..reps {
                let heuristic_budget = match algo {
                    // Paper: ILS runs 1 s; SEA runs 10·n s. Scaled runs
                    // compress ILS's second proportionally (floor 50 ms).
                    Algo::Ils => SearchBudget::time(Duration::from_secs_f64(
                        (10.0 * scale.time_factor()).clamp(0.05, 1.0),
                    )),
                    _ => SearchBudget::time(scale.query_budget(n)),
                };
                let config = match algo {
                    Algo::Ils => TwoStepConfig::Ils(Default::default(), heuristic_budget),
                    _ => TwoStepConfig::Sea(
                        mwsj_core::SeaConfig::default_for(&instance),
                        heuristic_budget,
                    ),
                };
                let seed = 4000 + rep as u64;
                let mut rng = StdRng::seed_from_u64(seed);
                let total_budget = SearchBudget::time(ibb_cap);
                rec.start(
                    &format!("{}+IBB", algo.name()),
                    &instance,
                    &total_budget,
                    seed,
                );
                let start = std::time::Instant::now();
                // The pipeline emits its own combined `run_end` (both
                // stages run nested), so no `rec.end` here.
                let outcome = TwoStep::new(config).run_with_obs(
                    &instance,
                    &total_budget,
                    &mut rng,
                    rec.obs(),
                );
                let elapsed = start.elapsed();
                if outcome.best.is_exact() {
                    times.push(elapsed.as_secs_f64());
                } else {
                    timeouts += 1;
                }
            }
            let cell = if times.is_empty() {
                format!(">{:.0}", ibb_cap.as_secs_f64())
            } else if timeouts > 0 {
                format!("{:.2} ({timeouts} t/o)", mean(&times))
            } else {
                format!("{:.2}", mean(&times))
            };
            eprintln!("fig11: n={n} {}+IBB done ({cell})", algo.name());
            cells.push(cell);
        }
        table.row(cells);
    }
    table
}

/// Runs, prints and persists the experiment.
pub fn main(scale: Scale) {
    let (sizes, cardinality, cap, reps) = settings(scale);
    println!(
        "Fig. 11 — time (s) to retrieve the planted exact solution, cliques n ∈ {:?}, N = {}, IBB cap {:.0}s, {} reps (scale: {})",
        sizes,
        cardinality,
        cap.as_secs_f64(),
        reps,
        scale.name()
    );
    let rec = Recorder::create("fig11");
    let table = run_recorded(scale, &rec);
    println!("{}", table.render());
    let path = write_csv("fig11.csv", &table.to_csv()).expect("write results");
    println!("CSV written to {}", path.display());
    if let Some(metrics) = rec.finish() {
        println!("metrics JSONL written to {}", metrics.display());
    }
}
