//! One module per paper figure/table, plus tuning and ablation studies.

pub mod ablations;
pub mod fig10a;
pub mod fig10b;
pub mod fig10c;
pub mod fig11;
pub mod sea_tuning;

use mwsj_core::Instance;
use mwsj_datagen::{QueryShape, WorkloadSpec};
use mwsj_query::Solution;

/// Builds the experiment instance for a shape/size/cardinality at the
/// hard-region density (`target` expected solutions), optionally planting
/// one guaranteed exact solution (Fig. 11).
pub(crate) fn build_instance(
    shape: QueryShape,
    n: usize,
    cardinality: usize,
    target: f64,
    plant: bool,
    seed: u64,
) -> (Instance, Option<Solution>, f64) {
    let spec = WorkloadSpec {
        shape,
        n_vars: n,
        cardinality,
        target_solutions: target,
        plant,
        distribution: mwsj_datagen::Distribution::Uniform,
        seed,
    };
    let w = spec.generate();
    let planted = w.planted.clone();
    let density = w.density;
    let instance = Instance::new(w.graph, w.datasets).expect("valid workload");
    (instance, planted, density)
}

#[cfg(test)]
mod tests {
    use crate::Scale;

    /// Every experiment runs end to end at smoke scale and produces a
    /// well-formed table. This is the harness's own regression test; it
    /// takes a few seconds total.
    #[test]
    fn all_experiments_run_at_smoke_scale() {
        let scale = Scale::Smoke;
        let t = super::fig10a::run(scale);
        assert!(t.to_csv().lines().count() > 1);
        let t = super::fig10b::run_shape(scale, mwsj_datagen::QueryShape::Chain);
        assert!(t.to_csv().lines().count() > 1);
        let t = super::fig10c::run_shape(scale, mwsj_datagen::QueryShape::Clique);
        assert!(t.to_csv().lines().count() > 1);
        let t = super::fig11::run(scale);
        assert!(t.to_csv().lines().count() > 1);
        let t = super::ablations::run(scale);
        assert!(t.to_csv().lines().count() > 1);
    }

    #[test]
    fn instance_builder_plants_on_request() {
        let (inst, planted, density) =
            super::build_instance(mwsj_datagen::QueryShape::Clique, 3, 100, 1.0, true, 9);
        assert!(density > 0.0);
        let sol = planted.expect("planted");
        assert_eq!(inst.violations(&sol), 0);
    }
}
