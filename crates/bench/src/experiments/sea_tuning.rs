//! **SEA parameter tuning** — the sensitivity study behind §5's parameter
//! choices (published in the long version of the paper).
//!
//! One-at-a-time sweeps around the scaled defaults on a 15-variable clique
//! in the hard region: population `p`, tournament size `T`, crossover rate
//! `μc`, mutation rate `μm` and the crossover-point schedule `g_c`.

use crate::experiments::build_instance;
use crate::{mean, write_csv, Scale, Table};
use mwsj_core::{Sea, SeaConfig, SearchBudget};
use mwsj_datagen::QueryShape;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_config(
    instance: &mwsj_core::Instance,
    config: SeaConfig,
    budget: &SearchBudget,
    reps: usize,
) -> f64 {
    let sims: Vec<f64> = (0..reps)
        .map(|rep| {
            let mut rng = StdRng::seed_from_u64(5000 + rep as u64);
            Sea::new(config.clone())
                .run(instance, budget, &mut rng)
                .best_similarity
        })
        .collect();
    mean(&sims)
}

/// Runs the sweep; rows are `(parameter, value, similarity)`.
pub fn run(scale: Scale) -> Table {
    let n = match scale {
        Scale::Smoke => 5,
        _ => 15,
    };
    let (instance, _, _) = build_instance(
        QueryShape::Clique,
        n,
        scale.cardinality(),
        1.0,
        false,
        0x5EA,
    );
    let budget = SearchBudget::time(scale.query_budget(n));
    let base = SeaConfig::default_for(&instance);
    let reps = scale.repetitions().min(5);

    let mut table = Table::new(vec!["parameter", "value", "similarity"]);

    let populations: &[usize] = match scale {
        Scale::Smoke => &[32, 64],
        _ => &[32, 64, 128, 256, 512],
    };
    for &p in populations {
        let config = SeaConfig {
            population: p,
            tournament: (p / 20).max(2),
            ..base.clone()
        };
        let sim = run_config(&instance, config, &budget, reps);
        table.row(vec![
            "population".into(),
            p.to_string(),
            format!("{sim:.3}"),
        ]);
        eprintln!("sea_tuning: population={p} done");
    }

    for &t in &[1usize, 2, 6, 13, 26] {
        let config = SeaConfig {
            tournament: t,
            ..base.clone()
        };
        let sim = run_config(&instance, config, &budget, reps);
        table.row(vec![
            "tournament".into(),
            t.to_string(),
            format!("{sim:.3}"),
        ]);
        eprintln!("sea_tuning: tournament={t} done");
    }

    for &mc in &[0.0, 0.3, 0.6, 0.9] {
        let config = SeaConfig {
            crossover_rate: mc,
            ..base.clone()
        };
        let sim = run_config(&instance, config, &budget, reps);
        table.row(vec![
            "crossover_rate".into(),
            mc.to_string(),
            format!("{sim:.3}"),
        ]);
        eprintln!("sea_tuning: crossover_rate={mc} done");
    }

    for &mm in &[0.0, 0.5, 1.0] {
        let config = SeaConfig {
            mutation_rate: mm,
            ..base.clone()
        };
        let sim = run_config(&instance, config, &budget, reps);
        table.row(vec![
            "mutation_rate".into(),
            mm.to_string(),
            format!("{sim:.3}"),
        ]);
        eprintln!("sea_tuning: mutation_rate={mm} done");
    }

    for &gc in &[1u64, 5, 10, 50] {
        let config = SeaConfig {
            generations_per_c: gc,
            ..base.clone()
        };
        let sim = run_config(&instance, config, &budget, reps);
        table.row(vec![
            "generations_per_c".into(),
            gc.to_string(),
            format!("{sim:.3}"),
        ]);
        eprintln!("sea_tuning: generations_per_c={gc} done");
    }

    table
}

/// Runs, prints and persists the sweep.
pub fn main(scale: Scale) {
    println!("SEA parameter tuning (scale: {})", scale.name());
    let table = run(scale);
    println!("{}", table.render());
    let path = write_csv("sea_tuning.csv", &table.to_csv()).expect("write results");
    println!("CSV written to {}", path.display());
}
