//! **Fig. 10b** — solution quality over time (convergence curves).
//!
//! Fixes n = 15 variables (the paper's choice) on the Fig. 10a datasets
//! and lets every algorithm run for 40 seconds on chains and 120 seconds
//! on cliques (scaled). Each run's improvement trace is resampled onto a
//! common time grid; the table reports the average best similarity at each
//! grid point, reproducing the convergence-point observations ("ILS and
//! GILS converge before 5/10 seconds; SEA needs longer but ends higher").

use crate::experiments::build_instance;
use crate::{mean, write_csv, Algo, Recorder, Scale, Table};
use mwsj_core::SearchBudget;
use mwsj_datagen::QueryShape;
use std::time::Duration;

/// Number of sample points on the time grid.
const GRID: usize = 20;

/// Runs the experiment for one shape; returns `(time, ILS, GILS, SEA)`
/// rows.
pub fn run_shape(scale: Scale, shape: QueryShape) -> Table {
    run_shape_recorded(scale, shape, &Recorder::disabled())
}

/// Like [`run_shape`], additionally streaming per-run events and metrics
/// through `rec`.
pub fn run_shape_recorded(scale: Scale, shape: QueryShape, rec: &Recorder) -> Table {
    let n = match scale {
        Scale::Smoke => 5,
        _ => 15,
    };
    // Paper: 40 s for chains, 120 s for cliques.
    let base_secs = match shape {
        QueryShape::Clique => 120.0,
        _ => 40.0,
    };
    let total = Duration::from_secs_f64(base_secs * scale.time_factor());
    let budget = SearchBudget::time(total);
    let (instance, _, _) =
        build_instance(shape, n, scale.cardinality(), 1.0, false, 0xB0B + n as u64);

    // One set of traces per algorithm.
    let mut table = Table::new(vec!["t_seconds", "ILS", "GILS", "SEA"]);
    let mut curves: Vec<Vec<f64>> = Vec::new();
    for algo in Algo::PAPER {
        let outcomes: Vec<_> = (0..scale.repetitions())
            .map(|rep| rec.run(algo, &instance, &budget, 2000 + rep as u64))
            .collect();
        let curve: Vec<f64> = (1..=GRID)
            .map(|g| {
                let t = total.mul_f64(g as f64 / GRID as f64);
                mean(
                    &outcomes
                        .iter()
                        .map(|o| o.similarity_at(t))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        curves.push(curve);
        eprintln!("fig10b: {} {} done", shape.name(), algo.name());
    }
    #[allow(clippy::needless_range_loop)]
    for g in 0..GRID {
        let t = total.mul_f64((g + 1) as f64 / GRID as f64);
        table.row(vec![
            format!("{:.2}", t.as_secs_f64()),
            format!("{:.3}", curves[0][g]),
            format!("{:.3}", curves[1][g]),
            format!("{:.3}", curves[2][g]),
        ]);
    }
    table
}

/// Runs, prints and persists the experiment for both shapes.
pub fn main(scale: Scale) {
    for shape in [QueryShape::Chain, QueryShape::Clique] {
        println!(
            "Fig. 10b — similarity over time, {} (scale: {})",
            shape.name(),
            scale.name()
        );
        let rec = Recorder::create(&format!("fig10b_{}", shape.name()));
        let table = run_shape_recorded(scale, shape, &rec);
        println!("{}", table.render());
        let name = format!("fig10b_{}.csv", shape.name());
        let path = write_csv(&name, &table.to_csv()).expect("write results");
        println!("CSV written to {}", path.display());
        if let Some(metrics) = rec.finish() {
            println!("metrics JSONL written to {}", metrics.display());
        }
    }
}
