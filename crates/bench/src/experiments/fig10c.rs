//! **Fig. 10c** — solution quality vs. expected number of solutions.
//!
//! Fixes n = 15 variables and sweeps the dataset density so the expected
//! number of exact solutions grows 1, 10, …, 10⁵; every algorithm runs for
//! 150 seconds (= `10·n`, scaled). The paper's observation: the relative
//! ranking of the algorithms is essentially independent of the structure
//! of the search space.

use crate::experiments::build_instance;
use crate::{mean, write_csv, Algo, Recorder, Scale, Table};
use mwsj_core::SearchBudget;
use mwsj_datagen::QueryShape;

/// Runs the experiment for one shape; rows are
/// `(expected_solutions, density, ILS, GILS, SEA)`.
pub fn run_shape(scale: Scale, shape: QueryShape) -> Table {
    run_shape_recorded(scale, shape, &Recorder::disabled())
}

/// Like [`run_shape`], additionally streaming per-run events and metrics
/// through `rec`.
pub fn run_shape_recorded(scale: Scale, shape: QueryShape, rec: &Recorder) -> Table {
    let n = match scale {
        Scale::Smoke => 5,
        _ => 15,
    };
    let budget = SearchBudget::time(scale.query_budget(n));
    let exponents: &[u32] = match scale {
        Scale::Smoke => &[0, 2, 4],
        _ => &[0, 1, 2, 3, 4, 5],
    };
    let mut table = Table::new(vec!["Sol", "density", "ILS", "GILS", "SEA"]);
    for &e in exponents {
        let target = 10f64.powi(e as i32);
        let (instance, _, density) = build_instance(
            shape,
            n,
            scale.cardinality(),
            target,
            false,
            0xC0C0 + e as u64,
        );
        let mut cells = vec![format!("1e{e}"), format!("{density:.4}")];
        for algo in Algo::PAPER {
            let sims: Vec<f64> = (0..scale.repetitions())
                .map(|rep| {
                    rec.run(algo, &instance, &budget, 3000 + rep as u64)
                        .best_similarity
                })
                .collect();
            cells.push(format!("{:.3}", mean(&sims)));
        }
        table.row(cells);
        eprintln!("fig10c: {} Sol=1e{e} done", shape.name());
    }
    table
}

/// Runs, prints and persists the experiment for both shapes.
pub fn main(scale: Scale) {
    for shape in [QueryShape::Chain, QueryShape::Clique] {
        println!(
            "Fig. 10c — similarity vs. expected solutions, {} (scale: {})",
            shape.name(),
            scale.name()
        );
        let rec = Recorder::create(&format!("fig10c_{}", shape.name()));
        let table = run_shape_recorded(scale, shape, &rec);
        println!("{}", table.render());
        let name = format!("fig10c_{}.csv", shape.name());
        let path = write_csv(&name, &table.to_csv()).expect("write results");
        println!("CSV written to {}", path.display());
        if let Some(metrics) = rec.finish() {
            println!("metrics JSONL written to {}", metrics.display());
        }
    }
}
