//! **Ablations** — quantifying the paper's two §6 claims about *why* the
//! proposed algorithms beat the earlier configuration-similarity
//! heuristics \[PMK+99\]:
//!
//! (i)  index-based re-instantiation (ILS) vs. random re-instantiation
//!      (naive-LS), plus simulated annealing for context;
//! (ii) the greedy, quality-aware crossover (SEA) vs. a random single-point
//!      crossover GA (naive-GA).
//!
//! A third study sweeps GILS's penalty weight λ, including the paper's
//! printed `10⁻¹⁰·s` setting.

use crate::experiments::build_instance;
use crate::{mean, write_csv, Algo, Recorder, Scale, Table};
use mwsj_core::{Gils, GilsConfig, SearchBudget, SearchContext};
use mwsj_datagen::QueryShape;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs all ablation studies; rows are `(study, shape, algorithm, similarity)`.
pub fn run(scale: Scale) -> Table {
    run_recorded(scale, &Recorder::disabled())
}

/// Like [`run`], additionally streaming per-run events and metrics through
/// `rec`.
pub fn run_recorded(scale: Scale, rec: &Recorder) -> Table {
    let n = match scale {
        Scale::Smoke => 5,
        _ => 15,
    };
    let reps = scale.repetitions();
    let mut table = Table::new(vec!["study", "shape", "algorithm", "similarity"]);

    for shape in [QueryShape::Chain, QueryShape::Clique] {
        let (instance, _, _) =
            build_instance(shape, n, scale.cardinality(), 1.0, false, 0xAB1A + n as u64);
        let budget = SearchBudget::time(scale.query_budget(n));

        // (i) Re-instantiation policy.
        for algo in [Algo::Ils, Algo::NaiveLs, Algo::Sa] {
            let sims: Vec<f64> = (0..reps)
                .map(|rep| {
                    rec.run(algo, &instance, &budget, 6000 + rep as u64)
                        .best_similarity
                })
                .collect();
            table.row(vec![
                "reinstantiation".to_string(),
                shape.name().to_string(),
                algo.name().to_string(),
                format!("{:.3}", mean(&sims)),
            ]);
            eprintln!(
                "ablations: reinstantiation {} {} done",
                shape.name(),
                algo.name()
            );
        }

        // (ii) Crossover mechanism.
        for algo in [Algo::Sea, Algo::NaiveGa] {
            let sims: Vec<f64> = (0..reps)
                .map(|rep| {
                    rec.run(algo, &instance, &budget, 7000 + rep as u64)
                        .best_similarity
                })
                .collect();
            table.row(vec![
                "crossover".to_string(),
                shape.name().to_string(),
                algo.name().to_string(),
                format!("{:.3}", mean(&sims)),
            ]);
            eprintln!("ablations: crossover {} {} done", shape.name(), algo.name());
        }

        // (iii) Hybrid initialisation (paper §7 future work): SEA seeded
        // with ILS local maxima vs. random initial population.
        {
            use mwsj_core::{Sea, SeaConfig};
            for (label, seeded) in [("SEA (random init)", false), ("SEA (ILS-seeded)", true)] {
                let sims: Vec<f64> = (0..reps)
                    .map(|rep| {
                        let mut cfg = SeaConfig::default_for(&instance);
                        cfg.seed_with_ils = seeded;
                        let seed = 7500 + rep as u64;
                        let mut rng = StdRng::seed_from_u64(seed);
                        rec.start(label, &instance, &budget, seed);
                        let ctx = SearchContext::local(budget)
                            .with_obs(rec.obs().clone())
                            .nested();
                        let outcome = Sea::new(cfg).search(&instance, &ctx, &mut rng);
                        rec.end(&outcome);
                        outcome.best_similarity
                    })
                    .collect();
                table.row(vec![
                    "sea_seeding".to_string(),
                    shape.name().to_string(),
                    label.to_string(),
                    format!("{:.3}", mean(&sims)),
                ]);
            }
            eprintln!("ablations: sea_seeding {} done", shape.name());
        }

        // (iv) GILS λ sweep.
        let s = instance.problem_size_bits();
        for (label, lambda) in [
            ("paper(1e-10·s)".to_string(), GilsConfig::paper_lambda(s)),
            ("0.01".to_string(), 0.01),
            ("0.1".to_string(), 0.1),
            ("0.5".to_string(), 0.5),
            ("1.0".to_string(), 1.0),
            ("10".to_string(), 10.0),
        ] {
            let sims: Vec<f64> = (0..reps)
                .map(|rep| {
                    let seed = 8000 + rep as u64;
                    let mut rng = StdRng::seed_from_u64(seed);
                    rec.start(&format!("GILS λ={label}"), &instance, &budget, seed);
                    let ctx = SearchContext::local(budget)
                        .with_obs(rec.obs().clone())
                        .nested();
                    let outcome = Gils::new(GilsConfig::with_lambda(lambda))
                        .search(&instance, &ctx, &mut rng);
                    rec.end(&outcome);
                    outcome.best_similarity
                })
                .collect();
            table.row(vec![
                "gils_lambda".to_string(),
                shape.name().to_string(),
                format!("λ={label}"),
                format!("{:.3}", mean(&sims)),
            ]);
        }
        eprintln!("ablations: gils_lambda {} done", shape.name());
    }
    table
}

/// Runs, prints and persists the ablation studies.
pub fn main(scale: Scale) {
    println!("Ablation studies (scale: {})", scale.name());
    let rec = Recorder::create("ablations");
    let table = run_recorded(scale, &rec);
    println!("{}", table.render());
    let path = write_csv("ablations.csv", &table.to_csv()).expect("write results");
    println!("CSV written to {}", path.display());
    if let Some(metrics) = rec.finish() {
        println!("metrics JSONL written to {}", metrics.display());
    }
}
