//! Plain-text tables and CSV output for the experiment harness.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple fixed-width table printer matching the paper's tabular style.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// The rows as CSV (header included).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Writes `content` to `results/<name>` (creating the directory), relative
/// to the workspace root when run from it, else the current directory.
pub fn write_csv(name: &str, content: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    fs::write(&path, content)?;
    Ok(path)
}

/// Resolves (and creates) `results/<name>`, for writers that stream to the
/// file themselves (e.g. the JSONL metrics recorder).
pub(crate) fn results_file(name: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    Ok(dir.join(name))
}

fn results_dir() -> std::path::PathBuf {
    // Prefer the workspace root (where Cargo.toml with [workspace] lives).
    let mut dir = std::env::current_dir().unwrap_or_else(|_| Path::new(".").to_path_buf());
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return dir.join("results");
        }
        if !dir.pop() {
            return Path::new("results").to_path_buf();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["n", "similarity"]);
        t.row(vec!["5", "0.90"]);
        t.row(vec!["25", "0.75"]);
        let s = t.render();
        assert!(s.contains(" n  similarity"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(vec!["x"]);
        t.row(vec!["a,b"]);
        assert_eq!(t.to_csv(), "x\n\"a,b\"\n");
    }
}
