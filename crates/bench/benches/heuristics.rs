//! Criterion microbenches for the anytime heuristics at fixed step
//! budgets: per-step cost of ILS, GILS, SEA and the ablation baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mwsj_bench::Algo;
use mwsj_core::{Instance, SearchBudget};
use mwsj_datagen::{hard_region_density, Dataset, QueryShape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn instance(shape: QueryShape, n: usize, cardinality: usize) -> Instance {
    let mut rng = StdRng::seed_from_u64(17);
    let d = hard_region_density(shape, n, cardinality, 1.0);
    let datasets: Vec<Dataset> = (0..n)
        .map(|_| Dataset::uniform(cardinality, d, &mut rng))
        .collect();
    Instance::new(shape.graph(n), datasets).unwrap()
}

fn bench_heuristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("heuristics_fixed_steps");
    group.sample_size(10);
    let inst = instance(QueryShape::Clique, 10, 5_000);
    // Step units differ per algorithm (moves vs. generations); budgets are
    // chosen so each measurement does comparable work.
    let cases = [
        (Algo::Ils, 500u64),
        (Algo::Gils, 500),
        (Algo::Sea, 10),
        (Algo::NaiveLs, 500),
        (Algo::NaiveGa, 10),
        (Algo::Sa, 5_000),
    ];
    for (algo, steps) in cases {
        group.bench_with_input(BenchmarkId::new(algo.name(), steps), &inst, |b, inst| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(
                    algo.run(inst, &SearchBudget::iterations(steps), seed)
                        .best_similarity,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_heuristics);
criterion_main!(benches);
