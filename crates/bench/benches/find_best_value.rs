//! Criterion microbench for `find best value` (Fig. 5), the primitive on
//! every hot path of ILS/GILS/SEA — the paper's "about 60,000 local maxima
//! in 5 seconds" claim hinges on its throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mwsj_core::{find_best_value, Instance, SearchBudget};
use mwsj_datagen::{hard_region_density, Dataset, QueryShape};
use mwsj_query::PenaltyTable;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn instance(shape: QueryShape, n: usize, cardinality: usize) -> Instance {
    let mut rng = StdRng::seed_from_u64(7);
    let d = hard_region_density(shape, n, cardinality, 1.0);
    let datasets: Vec<Dataset> = (0..n)
        .map(|_| Dataset::uniform(cardinality, d, &mut rng))
        .collect();
    Instance::new(shape.graph(n), datasets).unwrap()
}

fn bench_find_best_value(c: &mut Criterion) {
    let mut group = c.benchmark_group("find_best_value");
    group.sample_size(20);
    for (shape, label) in [(QueryShape::Chain, "chain"), (QueryShape::Clique, "clique")] {
        for &n in &[5usize, 15] {
            let inst = instance(shape, n, 10_000);
            let mut rng = StdRng::seed_from_u64(8);
            let sol = inst.random_solution(&mut rng);
            group.bench_with_input(
                BenchmarkId::new(label, n),
                &(inst, sol),
                |b, (inst, sol)| {
                    let mut var = 0usize;
                    b.iter(|| {
                        var = (var + 1) % inst.n_vars();
                        let mut acc = 0u64;
                        black_box(find_best_value(inst, sol, var, None, &mut acc))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_with_penalties(c: &mut Criterion) {
    let inst = instance(QueryShape::Clique, 10, 10_000);
    let mut rng = StdRng::seed_from_u64(9);
    let sol = inst.random_solution(&mut rng);
    let mut table = PenaltyTable::new();
    for v in 0..10 {
        for o in 0..100 {
            table.penalize(v, o * 37);
        }
    }
    c.bench_function("find_best_value/penalised", |b| {
        let mut var = 0usize;
        b.iter(|| {
            var = (var + 1) % inst.n_vars();
            let mut acc = 0u64;
            black_box(find_best_value(
                &inst,
                &sol,
                var,
                Some((&table, 0.5)),
                &mut acc,
            ))
        })
    });
}

fn bench_local_maxima_rate(c: &mut Criterion) {
    // End-to-end ILS step rate, the unit behind the paper's "60,000 local
    // maxima in 5 s" observation.
    let inst = instance(QueryShape::Chain, 15, 10_000);
    c.bench_function("ils/1000_steps", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome =
                mwsj_core::Ils::default().run(&inst, &SearchBudget::iterations(1_000), &mut rng);
            black_box(outcome.stats.local_maxima)
        })
    });
}

criterion_group!(
    benches,
    bench_find_best_value,
    bench_with_penalties,
    bench_local_maxima_rate
);
criterion_main!(benches);
