//! Criterion microbenches for the exact join algorithms: pairwise R-tree
//! join, window reduction, synchronous traversal, PJM and IBB on moderate
//! instances.

use criterion::{criterion_group, criterion_main, Criterion};
use mwsj_core::{
    Ibb, IbbConfig, Instance, PairwiseJoin, Pjm, SearchBudget, SynchronousTraversal,
    WindowReduction,
};
use mwsj_datagen::{hard_region_density, plant_solution, Dataset, QueryShape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn instance(shape: QueryShape, n: usize, cardinality: usize, target: f64) -> Instance {
    let mut rng = StdRng::seed_from_u64(23);
    let d = hard_region_density(shape, n, cardinality, target);
    let datasets: Vec<Dataset> = (0..n)
        .map(|_| Dataset::uniform(cardinality, d, &mut rng))
        .collect();
    Instance::new(shape.graph(n), datasets).unwrap()
}

fn bench_pairwise(c: &mut Criterion) {
    let inst = instance(QueryShape::Chain, 2, 20_000, 1_000.0);
    c.bench_function("pairwise_join/20k_x_20k", |b| {
        b.iter(|| black_box(PairwiseJoin::join(inst.tree(0), inst.tree(1)).pairs.len()))
    });
}

fn bench_exact_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_joins");
    group.sample_size(10);
    let inst = instance(QueryShape::Chain, 4, 2_000, 100.0);
    let budget = SearchBudget::seconds(60.0);
    group.bench_function("wr/chain4", |b| {
        b.iter(|| {
            black_box(
                WindowReduction::new()
                    .run(&inst, &budget, usize::MAX)
                    .solutions
                    .len(),
            )
        })
    });
    group.bench_function("st/chain4", |b| {
        b.iter(|| {
            black_box(
                SynchronousTraversal::new()
                    .run(&inst, &budget, usize::MAX)
                    .solutions
                    .len(),
            )
        })
    });
    group.bench_function("pjm/chain4", |b| {
        b.iter(|| {
            black_box(
                Pjm::default()
                    .run(&inst, &budget, usize::MAX)
                    .solutions
                    .len(),
            )
        })
    });
    group.finish();
}

fn bench_ibb(c: &mut Criterion) {
    let mut group = c.benchmark_group("ibb");
    group.sample_size(10);
    // Planted instance: IBB races to the single exact solution.
    let mut rng = StdRng::seed_from_u64(29);
    let shape = QueryShape::Clique;
    let (n, cardinality) = (4usize, 500usize);
    let d = hard_region_density(shape, n, cardinality, 1.0);
    let mut datasets: Vec<Dataset> = (0..n)
        .map(|_| Dataset::uniform(cardinality, d, &mut rng))
        .collect();
    let graph = shape.graph(n);
    plant_solution(&mut datasets, &graph, &mut rng);
    let inst = Instance::new(graph, datasets).unwrap();
    group.bench_function("planted_clique4", |b| {
        b.iter(|| {
            let outcome = Ibb::new(IbbConfig::new()).run(&inst, &SearchBudget::seconds(120.0));
            black_box(outcome.best_violations)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pairwise, bench_exact_joins, bench_ibb);
criterion_main!(benches);
