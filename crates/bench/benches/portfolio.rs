//! Criterion bench for the parallel portfolio: the same restart count at
//! 1 and 4 worker threads. The parallel run produces bit-identical results
//! (step budgets → deterministic reduction), so the speedup is pure
//! wall-clock: ≥2× at 4 threads on the Fig. 10-style workload below.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mwsj_bench::Algo;
use mwsj_core::{Instance, SearchBudget};
use mwsj_datagen::{hard_region_density, Dataset, QueryShape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn instance(shape: QueryShape, n: usize, cardinality: usize) -> Instance {
    let mut rng = StdRng::seed_from_u64(17);
    let d = hard_region_density(shape, n, cardinality, 1.0);
    let datasets: Vec<Dataset> = (0..n)
        .map(|_| Dataset::uniform(cardinality, d, &mut rng))
        .collect();
    Instance::new(shape.graph(n), datasets).unwrap()
}

fn bench_portfolio(c: &mut Criterion) {
    let mut group = c.benchmark_group("portfolio_restarts8");
    group.sample_size(10);
    let inst = instance(QueryShape::Clique, 8, 2_000);
    const RESTARTS: usize = 8;
    const TOTAL_STEPS: u64 = 8_000;
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("ILS", threads), &inst, |b, inst| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(
                    Algo::Ils
                        .run_portfolio(
                            inst,
                            &SearchBudget::iterations(TOTAL_STEPS),
                            seed,
                            RESTARTS,
                            threads,
                        )
                        .merged
                        .best_similarity,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_portfolio);
criterion_main!(benches);
