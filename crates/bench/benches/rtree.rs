//! Criterion microbenches for the R*-tree substrate: construction
//! (incremental vs. STR bulk load) and query throughput.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use mwsj_datagen::Dataset;
use mwsj_geom::{Point, Rect};
use mwsj_rtree::{RTree, RTreeParams};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn items(n: usize, seed: u64) -> Vec<(Rect, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::uniform(n, 0.05, &mut rng)
        .rects()
        .iter()
        .copied()
        .zip(0u32..)
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree_build");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000, 100_000] {
        let data = items(n, 1);
        // Incremental insert at 100k is dominated by reinsertion churn and
        // would swamp the group's time budget; the bulk loaders are the
        // paper-scale story.
        if n <= 10_000 {
            group.bench_with_input(BenchmarkId::new("insert", n), &data, |b, data| {
                b.iter_batched(
                    || data.clone(),
                    |data| {
                        let mut tree = RTree::with_params(RTreeParams::new(32));
                        for (r, v) in data {
                            tree.insert(r, v);
                        }
                        black_box(tree.len())
                    },
                    BatchSize::LargeInput,
                )
            });
        }
        group.bench_with_input(BenchmarkId::new("bulk_load_str", n), &data, |b, data| {
            b.iter_batched(
                || data.clone(),
                |data| {
                    let tree = RTree::bulk_load_with_params(RTreeParams::new(32), data);
                    black_box(tree.len())
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(
            BenchmarkId::new("bulk_load_hilbert", n),
            &data,
            |b, data| {
                b.iter_batched(
                    || data.clone(),
                    |data| {
                        let tree = RTree::bulk_load_hilbert_with_params(RTreeParams::new(32), data);
                        black_box(tree.len())
                    },
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let tree = RTree::bulk_load_with_params(RTreeParams::new(32), items(50_000, 2));
    let mut group = c.benchmark_group("rtree_query");
    group.sample_size(20);
    let window = Rect::new(0.4, 0.4, 0.45, 0.45);
    group.bench_function("window_small", |b| {
        b.iter(|| black_box(tree.window(black_box(&window)).count()))
    });
    let big = Rect::new(0.1, 0.1, 0.9, 0.9);
    group.bench_function("window_large", |b| {
        b.iter(|| black_box(tree.window(black_box(&big)).count()))
    });
    let mut rng = StdRng::seed_from_u64(3);
    group.bench_function("knn_10", |b| {
        b.iter(|| {
            let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
            black_box(tree.nearest_neighbors(&p, 10).len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_queries);
criterion_main!(benches);
