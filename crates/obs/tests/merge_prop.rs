//! Property-based tests for the deterministic merge operations of the
//! observability layer: histogram-snapshot merging preserves the exact
//! count and sum, and phase-snapshot merging is associative and
//! order-insensitive — the algebraic facts the portfolio's parallel
//! reduction and the bench suite's two-step stat combination rely on.

use mwsj_obs::{merge_phase_snapshots, HistogramSnapshot, MetricsRegistry, PhaseSnapshot};
use proptest::prelude::*;
use std::time::Duration;

/// Builds a histogram snapshot by recording `values` into a live registry,
/// so the tested merge sees exactly what instrumentation produces.
fn histogram_of(values: &[u64]) -> HistogramSnapshot {
    let reg = MetricsRegistry::new();
    let h = reg.histogram("h");
    for &v in values {
        h.record(v);
    }
    reg.snapshot()
        .histograms
        .into_iter()
        .next()
        .map(|(_, snap)| snap)
        .unwrap_or_default()
}

fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    // Mix small values (bucket-boundary neighbours) with large ones.
    prop::collection::vec(
        prop_oneof![0u64..10, (0u32..40).prop_map(|k| 1u64 << k)],
        0..40,
    )
}

fn arb_phases() -> impl Strategy<Value = Vec<PhaseSnapshot>> {
    let path = prop_oneof![
        Just("solve".to_string()),
        Just("solve > restart[0]".to_string()),
        Just("solve > restart[1]".to_string()),
        Just("solve > restart[0] > find_best_value".to_string()),
        Just("join".to_string()),
    ];
    prop::collection::vec(
        (path, 0u64..100, 0u64..10_000, 0u64..5_000_000).prop_map(|(path, calls, steps, us)| {
            PhaseSnapshot {
                path,
                calls,
                steps,
                wall: Duration::from_micros(us),
            }
        }),
        0..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging histogram snapshots loses no observations: count, sum and
    /// per-bucket totals all equal those of recording every value into a
    /// single histogram, regardless of how the values were split.
    #[test]
    fn histogram_merge_preserves_count_and_sum(
        a in arb_values(),
        b in arb_values(),
        c in arb_values(),
    ) {
        let mut merged = histogram_of(&a);
        merged.merge(&histogram_of(&b));
        merged.merge(&histogram_of(&c));

        let combined: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let direct = histogram_of(&combined);

        prop_assert_eq!(merged.count, combined.len() as u64);
        prop_assert_eq!(merged.sum, combined.iter().sum::<u64>());
        prop_assert_eq!(&merged.buckets, &direct.buckets);
        prop_assert_eq!(merged.max, direct.max);
        if !combined.is_empty() {
            prop_assert_eq!(merged.min, direct.min);
        }
        let bucket_total: u64 = merged.buckets.iter().map(|(_, n)| n).sum();
        prop_assert_eq!(bucket_total, merged.count);
    }

    /// Histogram merge is commutative on every field.
    #[test]
    fn histogram_merge_is_commutative(a in arb_values(), b in arb_values()) {
        let (ha, hb) = (histogram_of(&a), histogram_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb;
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// `merge_phase_snapshots` is associative: merging list-by-list in any
    /// grouping equals merging everything at once.
    #[test]
    fn phase_merge_is_associative(
        a in arb_phases(),
        b in arb_phases(),
        c in arb_phases(),
    ) {
        let all = merge_phase_snapshots([a.clone(), b.clone(), c.clone()]);
        let left = merge_phase_snapshots([
            merge_phase_snapshots([a.clone(), b.clone()]),
            c.clone(),
        ]);
        let right = merge_phase_snapshots([
            a.clone(),
            merge_phase_snapshots([b.clone(), c.clone()]),
        ]);
        prop_assert_eq!(&all, &left);
        prop_assert_eq!(&all, &right);
    }

    /// `merge_phase_snapshots` is order-insensitive: any permutation of
    /// the input lists yields the same (sorted) result.
    #[test]
    fn phase_merge_is_order_insensitive(
        a in arb_phases(),
        b in arb_phases(),
        c in arb_phases(),
    ) {
        let abc = merge_phase_snapshots([a.clone(), b.clone(), c.clone()]);
        let cab = merge_phase_snapshots([c.clone(), a.clone(), b.clone()]);
        let bca = merge_phase_snapshots([b, c, a]);
        prop_assert_eq!(&abc, &cab);
        prop_assert_eq!(&abc, &bca);
        // And the result is sorted by path with unique keys.
        let paths: Vec<&str> = abc.iter().map(|s| s.path.as_str()).collect();
        let mut sorted = paths.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(paths, sorted);
    }
}
