//! Minimal JSON support: string escaping and number formatting for the
//! writer side, plus a small recursive-descent parser used by
//! `mwsj report` and the schema checker.
//!
//! The workspace builds without crates.io access, so this is a
//! deliberately tiny hand-rolled implementation covering exactly the
//! JSONL schema emitted by [`crate::events`]: objects, arrays, strings,
//! finite numbers, booleans and `null`. Numbers are parsed as `f64`;
//! integer counters are exact up to 2⁵³, far beyond any counter this
//! workspace produces in practice.

use std::fmt;

/// Escapes `s` for inclusion in a JSON string literal (quotes included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number. Non-finite values (which JSON cannot
/// represent) are emitted as `null`.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral floats without a fractional part ("1"),
        // which is still a valid JSON number; keep it as-is.
        s
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document; trailing whitespace is allowed, trailing
    /// garbage is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Object member lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's members, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Serialises the value as compact JSON (no whitespace).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialises the value as indented multi-line JSON (two spaces per
    /// level) — the format of `BENCH_*.json` snapshot files.
    pub fn dump_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let newline = |out: &mut String, depth: usize| {
            if let Some(width) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(width * depth));
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => out.push_str(&fmt_f64(*v)),
            Json::Str(s) => out.push_str(&escape(s)),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline(out, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, depth + 1);
                    out.push_str(&escape(key));
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline(out, depth);
                out.push('}');
            }
        }
    }
}

fn err(offset: usize, message: &str) -> JsonError {
    JsonError {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected '{}'", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected '{lit}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number slice");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, "invalid number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, pos)?;
                        let c = match code {
                            0xD800..=0xDBFF => {
                                // Surrogate pair: expect a trailing \uXXXX.
                                if bytes.get(*pos + 1) == Some(&b'\\')
                                    && bytes.get(*pos + 2) == Some(&b'u')
                                {
                                    *pos += 2;
                                    let low = parse_hex4(bytes, pos)?;
                                    let combined = 0x10000
                                        + ((code as u32 - 0xD800) << 10)
                                        + (low as u32).wrapping_sub(0xDC00);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            }
                            0xDC00..=0xDFFF => '\u{FFFD}',
                            c => char::from_u32(c as u32).unwrap_or('\u{FFFD}'),
                        };
                        out.push(c);
                    }
                    _ => return Err(err(*pos, "invalid escape sequence")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (the input is a &str, so the
                // bytes are valid UTF-8 by construction).
                let rest = std::str::from_utf8(&bytes[*pos..]).expect("valid utf-8 input");
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u16, JsonError> {
    let start = *pos + 1;
    let end = start + 4;
    if end > bytes.len() {
        return Err(err(*pos, "truncated \\u escape"));
    }
    let hex = std::str::from_utf8(&bytes[start..end]).map_err(|_| err(start, "bad \\u escape"))?;
    let code = u16::from_str_radix(hex, 16).map_err(|_| err(start, "bad \\u escape"))?;
    *pos = end - 1;
    Ok(code)
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn fmt_f64_non_finite_is_null() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(2.0), "2");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn parse_roundtrip_object() {
        let doc = r#"{"event":"run_start","algo":"ILS","n_vars":5,"sim":0.75,"ok":true,"x":null,"arr":[1,2]}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("algo").unwrap().as_str(), Some("ILS"));
        assert_eq!(v.get("n_vars").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("sim").unwrap().as_f64(), Some(0.75));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("x"), Some(&Json::Null));
        assert_eq!(v.get("arr").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_escapes_and_unicode() {
        let v = Json::parse(r#""a\"\\\n\t\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"\\\n\tA\u{e9}"));
        let v = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{}x").is_err());
        assert!(Json::parse(r#"{"a":}"#).is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(0.0).as_u64(), Some(0));
    }

    #[test]
    fn dump_round_trips() {
        let doc = r#"{"label":"ci","n":3,"ok":true,"x":null,"arr":[1,0.5,"s"],"nested":{"a":[]}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.dump(), doc);
        let pretty = v.dump_pretty();
        assert!(pretty.contains('\n'));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }
}
