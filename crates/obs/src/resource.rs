//! Resource observability: deterministic memory accounting and a bounded
//! flight recorder.
//!
//! In-memory join processing lives or dies by working-set size: the paper's
//! "Very Large Databases" claim only holds while every R*-tree, flat-leaf
//! snapshot and search-side cache stays resident. This module gives the
//! workspace one vocabulary for that cost:
//!
//! * [`MemoryFootprint`] — byte-exact, **deterministic** accounting of the
//!   live bytes a structure keeps resident. Implementations must be
//!   length-based (element count × element size), never capacity-based, so
//!   the same logical state always reports the same byte count no matter
//!   how the allocator grew the backing storage. Freezing the same
//!   instance twice yields identical numbers (property-tested).
//! * [`ResourceReport`] — a named component → bytes table built per run,
//!   emitted as a `resource_report` run event and rendered by
//!   `mwsj report` as a memory table.
//! * [`FlightRecorder`] — a fixed-byte-budget ring buffer of recent
//!   [`RunEvent`]s any run can attach as its sink (or alongside one via
//!   [`FanoutSink`](crate::events::FanoutSink)), drained to JSONL on stop
//!   or anomaly — the introspection substrate a concurrent serve tier
//!   needs when a query goes sideways.

use crate::events::{EventSink, RunEvent};
use std::collections::VecDeque;
use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;

/// Deterministic, byte-exact accounting of the live bytes a structure
/// keeps resident.
///
/// # Contract
///
/// * **Deterministic**: the reported count is a pure function of the
///   structure's logical contents. Building the same structure twice from
///   the same inputs must report identical bytes.
/// * **Length-based**: collections count `len() × size_of::<Element>()`,
///   never `capacity()` — allocator slack and growth policy must not leak
///   into the number.
/// * **Live bytes**: the figure approximates resident heap + inline size
///   of the structure itself; it is an accounting unit for regression
///   gating and capacity planning, not an exact allocator measurement.
pub trait MemoryFootprint {
    /// Resident bytes per the contract above.
    fn memory_bytes(&self) -> u64;
}

/// A per-run memory table: named components with their
/// [`MemoryFootprint`] byte counts, sorted by component name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResourceReport {
    /// `(component, bytes)` pairs, ascending by component name.
    components: Vec<(String, u64)>,
}

impl ResourceReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        ResourceReport::default()
    }

    /// Records `bytes` for `component`, replacing any previous entry of
    /// the same name.
    pub fn record(&mut self, component: &str, bytes: u64) {
        match self
            .components
            .binary_search_by(|(name, _)| name.as_str().cmp(component))
        {
            Ok(i) => self.components[i].1 = bytes,
            Err(i) => self.components.insert(i, (component.to_string(), bytes)),
        }
    }

    /// The `(component, bytes)` pairs, ascending by component name.
    pub fn components(&self) -> &[(String, u64)] {
        &self.components
    }

    /// Looks up one component's byte count.
    pub fn component(&self, name: &str) -> Option<u64> {
        self.components
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| self.components[i].1)
    }

    /// Sum over all components.
    pub fn total_bytes(&self) -> u64 {
        self.components.iter().map(|(_, b)| *b).sum()
    }

    /// `true` when no component has been recorded.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

/// Default flight-recorder budget: 64 KiB of serialised events.
pub const DEFAULT_FLIGHT_RECORDER_BYTES: usize = 64 * 1024;

/// Ring state: serialised JSONL lines plus their summed byte cost.
#[derive(Debug, Default)]
struct Ring {
    lines: VecDeque<String>,
    bytes: usize,
}

/// A bounded flight recorder: an [`EventSink`] that keeps the **most
/// recent** run events as serialised JSONL lines inside a fixed byte
/// budget.
///
/// When appending a new event would exceed the budget, the *oldest* lines
/// are evicted first until it fits; an event whose serialised form alone
/// exceeds the budget is dropped. Memory is therefore bounded by
/// `capacity_bytes` regardless of run length, which is what lets a
/// long-lived serve path keep one attached per query without growth.
///
/// The recorder is drained ([`FlightRecorder::drain`] /
/// [`FlightRecorder::write_jsonl`]) on stop or anomaly; draining resets it
/// to empty so one recorder can be reused across runs.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity_bytes: usize,
    ring: Mutex<Ring>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity_bytes(DEFAULT_FLIGHT_RECORDER_BYTES)
    }
}

impl FlightRecorder {
    /// Creates a recorder with [`DEFAULT_FLIGHT_RECORDER_BYTES`] of budget.
    pub fn new() -> Self {
        FlightRecorder::default()
    }

    /// Creates a recorder bounded by `capacity_bytes` of serialised lines.
    pub fn with_capacity_bytes(capacity_bytes: usize) -> Self {
        FlightRecorder {
            capacity_bytes,
            ring: Mutex::new(Ring::default()),
        }
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight recorder mutex").lines.len()
    }

    /// `true` when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Summed byte cost of the retained serialised lines (always
    /// ≤ [`FlightRecorder::capacity_bytes`]).
    pub fn byte_len(&self) -> usize {
        self.ring.lock().expect("flight recorder mutex").bytes
    }

    /// Takes the retained JSONL lines, oldest first, leaving the recorder
    /// empty.
    pub fn drain(&self) -> Vec<String> {
        let mut ring = self.ring.lock().expect("flight recorder mutex");
        ring.bytes = 0;
        std::mem::take(&mut ring.lines).into()
    }

    /// Drains the recorder to `path` as JSON Lines (truncating), returning
    /// the number of lines written.
    pub fn write_jsonl<P: AsRef<Path>>(&self, path: P) -> io::Result<usize> {
        let lines = self.drain();
        let mut out = io::BufWriter::new(std::fs::File::create(path)?);
        for line in &lines {
            writeln!(out, "{line}")?;
        }
        out.flush()?;
        Ok(lines.len())
    }
}

impl EventSink for FlightRecorder {
    fn emit(&self, event: &RunEvent) {
        let line = event.to_json();
        if line.len() > self.capacity_bytes {
            return; // can never fit, even alone
        }
        let mut ring = self.ring.lock().expect("flight recorder mutex");
        while ring.bytes + line.len() > self.capacity_bytes {
            let evicted = ring.lines.pop_front().expect("bytes > 0 implies lines");
            ring.bytes -= evicted.len();
        }
        ring.bytes += line.len();
        ring.lines.push_back(line);
    }

    fn fill_resource_report(&self, report: &mut ResourceReport) {
        report.record("flight_recorder", self.byte_len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn trace_event(step: u64) -> RunEvent {
        RunEvent::TracePoint {
            step,
            similarity: 0.5,
            elapsed_secs: 0.0,
        }
    }

    #[test]
    fn report_sorts_dedupes_and_totals() {
        let mut report = ResourceReport::new();
        report.record("tree", 100);
        report.record("cache", 20);
        report.record("tree", 150); // replaces
        assert_eq!(report.component("tree"), Some(150));
        assert_eq!(report.component("cache"), Some(20));
        assert_eq!(report.component("missing"), None);
        assert_eq!(report.total_bytes(), 170);
        let names: Vec<&str> = report
            .components()
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(names, vec!["cache", "tree"], "sorted by name");
    }

    #[test]
    fn recorder_keeps_recent_events_and_evicts_oldest_first() {
        let one_line = trace_event(0).to_json().len();
        // Budget for exactly three lines (all trace lines here have the
        // same serialised length).
        let recorder = FlightRecorder::with_capacity_bytes(3 * one_line);
        for step in 0..10 {
            recorder.emit(&trace_event(step));
            assert!(recorder.byte_len() <= recorder.capacity_bytes());
        }
        let lines = recorder.drain();
        assert_eq!(lines.len(), 3);
        let steps: Vec<u64> = lines
            .iter()
            .map(|l| {
                Json::parse(l)
                    .unwrap()
                    .get("step")
                    .unwrap()
                    .as_u64()
                    .unwrap()
            })
            .collect();
        assert_eq!(steps, vec![7, 8, 9], "oldest evicted first");
        assert!(recorder.is_empty(), "drain resets the ring");
        assert_eq!(recorder.byte_len(), 0);
    }

    #[test]
    fn oversized_event_is_dropped_not_stored() {
        let recorder = FlightRecorder::with_capacity_bytes(4);
        recorder.emit(&trace_event(1));
        assert!(recorder.is_empty());
        assert_eq!(recorder.byte_len(), 0);
    }

    #[test]
    fn write_jsonl_round_trips_through_schema() {
        let recorder = FlightRecorder::new();
        for step in 0..5 {
            recorder.emit(&trace_event(step));
        }
        let dir = std::env::temp_dir().join("mwsj-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("flight-{}.jsonl", std::process::id()));
        let written = recorder.write_jsonl(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(written, 5);
        assert_eq!(crate::schema::validate_jsonl(&text), Ok(5));
    }
}
