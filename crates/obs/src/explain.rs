//! Workload explain/audit reports: estimated vs observed cost.
//!
//! The paper's cost models (\[TSS98\]/\[PMT99\] selectivity formulas) predict a
//! query's output size and traversal cost *before* a run; the search layer
//! measures the actual traversal work. [`ExplainReport`] pairs the two —
//! per-edge selectivity estimates against observed pair counts, per-variable
//! expected window hit-rates and predicted node accesses against the
//! per-variable × per-level attribution of the shared access counter — plus
//! the R*-tree structural quality table behind the prediction.
//!
//! The report is emitted as the `explain_report` run event (one per
//! top-level run, merged by composites exactly like `resource_report`),
//! rendered by `mwsj report` and `mwsj explain`, and embedded as the
//! deterministic `explain` section of a bench snapshot.
//!
//! This crate stays dependency-free: the structs here are plain data filled
//! by `mwsj-core` (which owns the instance, the estimator and the run
//! stats); only (de)serialisation lives here.

use crate::json::Json;

/// Structural quality of one variable's R*-tree, per level
/// (`[0]` = leaf level everywhere).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TreeQuality {
    /// Number of levels.
    pub height: u64,
    /// Total number of nodes.
    pub nodes: u64,
    /// Mean node occupancy as a fraction of capacity.
    pub avg_fill: f64,
    /// Mean node occupancy per level.
    pub fill_per_level: Vec<f64>,
    /// Summed pairwise sibling overlap area / summed node area per level.
    pub overlap_factor_per_level: Vec<f64>,
    /// Fraction of node area not covered by entries per level.
    pub dead_space_per_level: Vec<f64>,
    /// Summed node margins (width + height) per level.
    pub perimeter_per_level: Vec<f64>,
}

/// Structural quality and predicted query cost of one variable's uniform
/// grid (present only when the run used the grid backend).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GridQuality {
    /// Total number of cells (`nx · ny`).
    pub cells: u64,
    /// Cells holding at least one entry.
    pub occupied_cells: u64,
    /// Replicated entries / unique objects (`≥ 1`; boundary straddlers are
    /// stored once per overlapped cell).
    pub replication_factor: f64,
    /// Mean entries per occupied cell.
    pub avg_occupancy: f64,
    /// Largest cell's entry count.
    pub max_occupancy: u64,
    /// Expected candidate cells touched by one *find best value* query on
    /// this variable, summed over the neighbour windows and clamped at
    /// `cells`.
    pub predicted_cells_per_query: f64,
    /// Predicted entry scans per query:
    /// `predicted_cells_per_query · avg_occupancy`.
    pub predicted_cost_per_query: f64,
}

/// Estimate-vs-actual record of one query-graph edge.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeExplain {
    /// First endpoint variable.
    pub a: u64,
    /// Second endpoint variable.
    pub b: u64,
    /// Predicate name (e.g. `"intersects"`).
    pub predicate: String,
    /// Estimated pairwise selectivity `(|rₐ|+|r_b|)²` \[TSS98\].
    pub estimated_selectivity: f64,
    /// Observed selectivity `pairs / (Nₐ·N_b)`; `None` when the pair count
    /// was skipped (dataset product over the counting threshold).
    pub observed_selectivity: Option<f64>,
    /// Raw observed qualifying pair count behind the selectivity.
    pub observed_pairs: Option<u64>,
}

impl EdgeExplain {
    /// Multiplicative estimate error `max(est/obs, obs/est)` (`1.0` =
    /// perfect). `None` when unobserved or when either side is zero.
    pub fn error_factor(&self) -> Option<f64> {
        let obs = self.observed_selectivity?;
        if obs <= 0.0 || self.estimated_selectivity <= 0.0 {
            return None;
        }
        let ratio = self.estimated_selectivity / obs;
        Some(ratio.max(1.0 / ratio))
    }
}

/// Estimate-vs-actual record of one query variable.
#[derive(Debug, Clone, PartialEq)]
pub struct VarExplain {
    /// The variable.
    pub var: u64,
    /// Dataset cardinality `Nᵥ`.
    pub cardinality: u64,
    /// Average per-axis rectangle extent `|rᵥ|`.
    pub avg_extent: f64,
    /// Expected objects satisfying all neighbour windows at once,
    /// `Nᵥ · Π (|rᵤ|+|rᵥ|)²`.
    pub expected_window_hits: f64,
    /// Predicted R*-tree node accesses of one *find best value* query on
    /// this variable: the classic window-query cost model
    /// `Σ_levels (area + w·perimeter + w²·nodes)` summed over the
    /// neighbour windows (union bound, clamped per level at the level's
    /// node count).
    pub predicted_accesses_per_query: f64,
    /// Observed node accesses attributed to this variable's tree.
    pub observed_accesses: u64,
    /// Observed accesses per tree level, `[0]` = leaf.
    pub accesses_per_level: Vec<u64>,
    /// Structural quality of the variable's tree.
    pub tree: TreeQuality,
    /// Grid-backend quality and predicted cost; `None` on R*-tree runs, so
    /// existing reports and pinned snapshots serialise byte-identically.
    pub grid: Option<GridQuality>,
}

/// One run's estimated-vs-observed cost report.
///
/// The estimate side (model, selectivities, hit rates, tree quality) is a
/// pure function of the instance and therefore byte-stable on a fixed
/// seed; the observed side is attributed traversal work, absent
/// (`observed_node_accesses == None`, zero per-var counts) in pre-run
/// `mwsj explain` mode.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainReport {
    /// Closed-form model behind `expected_solutions`
    /// (`acyclic` / `clique` / `decomposed` / `independence`).
    pub model: String,
    /// Expected number of exact solutions of the query.
    pub expected_solutions: f64,
    /// Per-edge records, in query-graph edge order.
    pub edges: Vec<EdgeExplain>,
    /// Per-variable records, in variable order.
    pub vars: Vec<VarExplain>,
    /// The run's shared node-access counter total; `None` for a pre-run
    /// estimate. The per-variable attributed counts sum to at most this
    /// (exactly, for the window-query algorithms ILS/GILS/SEA/IBB).
    pub observed_node_accesses: Option<u64>,
}

impl ExplainReport {
    /// Sum of the per-variable attributed node accesses.
    pub fn attributed_accesses(&self) -> u64 {
        self.vars.iter().map(|v| v.observed_accesses).sum()
    }

    /// `true` when the report carries an observed side.
    pub fn has_observed(&self) -> bool {
        self.observed_node_accesses.is_some()
    }

    /// Serialises the report's fields as the body of a JSON object (no
    /// braces, no `event` discriminator) — the exact field set of the
    /// `explain_report` run event and the snapshot `explain` record.
    pub fn to_json_fields(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "\"model\":\"{}\",\"expected_solutions\":{}",
            self.model,
            fmt_f64(self.expected_solutions)
        ));
        let edges: Vec<String> = self.edges.iter().map(edge_json).collect();
        out.push_str(&format!(",\"edges\":[{}]", edges.join(",")));
        let vars: Vec<String> = self.vars.iter().map(var_json).collect();
        out.push_str(&format!(",\"vars\":[{}]", vars.join(",")));
        if let Some(total) = self.observed_node_accesses {
            out.push_str(&format!(",\"observed_node_accesses\":{total}"));
        }
        out
    }

    /// Parses a report from a JSON object (an `explain_report` event line
    /// or a snapshot `explain` record). Returns `None` when any required
    /// field is missing or mistyped.
    pub fn from_json(value: &Json) -> Option<ExplainReport> {
        let model = value.get("model")?.as_str()?.to_string();
        let expected_solutions = value.get("expected_solutions")?.as_f64()?;
        let edges = value
            .get("edges")?
            .as_array()?
            .iter()
            .map(edge_from_json)
            .collect::<Option<Vec<_>>>()?;
        let vars = value
            .get("vars")?
            .as_array()?
            .iter()
            .map(var_from_json)
            .collect::<Option<Vec<_>>>()?;
        let observed_node_accesses = match value.get("observed_node_accesses") {
            Some(v) => Some(v.as_u64()?),
            None => None,
        };
        Some(ExplainReport {
            model,
            expected_solutions,
            edges,
            vars,
            observed_node_accesses,
        })
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn f64_list(values: &[f64]) -> String {
    let body: Vec<String> = values.iter().map(|&v| fmt_f64(v)).collect();
    format!("[{}]", body.join(","))
}

fn u64_list(values: &[u64]) -> String {
    let body: Vec<String> = values.iter().map(u64::to_string).collect();
    format!("[{}]", body.join(","))
}

fn edge_json(e: &EdgeExplain) -> String {
    let mut out = format!(
        "{{\"a\":{},\"b\":{},\"predicate\":\"{}\",\"estimated_selectivity\":{}",
        e.a,
        e.b,
        e.predicate,
        fmt_f64(e.estimated_selectivity)
    );
    if let Some(obs) = e.observed_selectivity {
        out.push_str(&format!(",\"observed_selectivity\":{}", fmt_f64(obs)));
    }
    if let Some(pairs) = e.observed_pairs {
        out.push_str(&format!(",\"observed_pairs\":{pairs}"));
    }
    out.push('}');
    out
}

fn edge_from_json(value: &Json) -> Option<EdgeExplain> {
    Some(EdgeExplain {
        a: value.get("a")?.as_u64()?,
        b: value.get("b")?.as_u64()?,
        predicate: value.get("predicate")?.as_str()?.to_string(),
        estimated_selectivity: value.get("estimated_selectivity")?.as_f64()?,
        observed_selectivity: match value.get("observed_selectivity") {
            Some(v) => Some(v.as_f64()?),
            None => None,
        },
        observed_pairs: match value.get("observed_pairs") {
            Some(v) => Some(v.as_u64()?),
            None => None,
        },
    })
}

fn var_json(v: &VarExplain) -> String {
    let mut out = format!(
        "{{\"var\":{},\"cardinality\":{},\"avg_extent\":{},\"expected_window_hits\":{},\
         \"predicted_accesses_per_query\":{},\"observed_accesses\":{},\
         \"accesses_per_level\":{},\"tree\":{}",
        v.var,
        v.cardinality,
        fmt_f64(v.avg_extent),
        fmt_f64(v.expected_window_hits),
        fmt_f64(v.predicted_accesses_per_query),
        v.observed_accesses,
        u64_list(&v.accesses_per_level),
        tree_json(&v.tree)
    );
    if let Some(grid) = &v.grid {
        out.push_str(&format!(",\"grid\":{}", grid_json(grid)));
    }
    out.push('}');
    out
}

fn var_from_json(value: &Json) -> Option<VarExplain> {
    Some(VarExplain {
        var: value.get("var")?.as_u64()?,
        cardinality: value.get("cardinality")?.as_u64()?,
        avg_extent: value.get("avg_extent")?.as_f64()?,
        expected_window_hits: value.get("expected_window_hits")?.as_f64()?,
        predicted_accesses_per_query: value.get("predicted_accesses_per_query")?.as_f64()?,
        observed_accesses: value.get("observed_accesses")?.as_u64()?,
        accesses_per_level: value
            .get("accesses_per_level")?
            .as_array()?
            .iter()
            .map(Json::as_u64)
            .collect::<Option<Vec<_>>>()?,
        tree: tree_from_json(value.get("tree")?)?,
        grid: match value.get("grid") {
            Some(v) => Some(grid_from_json(v)?),
            None => None,
        },
    })
}

fn grid_json(g: &GridQuality) -> String {
    format!(
        "{{\"cells\":{},\"occupied_cells\":{},\"replication_factor\":{},\
         \"avg_occupancy\":{},\"max_occupancy\":{},\"predicted_cells_per_query\":{},\
         \"predicted_cost_per_query\":{}}}",
        g.cells,
        g.occupied_cells,
        fmt_f64(g.replication_factor),
        fmt_f64(g.avg_occupancy),
        g.max_occupancy,
        fmt_f64(g.predicted_cells_per_query),
        fmt_f64(g.predicted_cost_per_query)
    )
}

fn grid_from_json(value: &Json) -> Option<GridQuality> {
    Some(GridQuality {
        cells: value.get("cells")?.as_u64()?,
        occupied_cells: value.get("occupied_cells")?.as_u64()?,
        replication_factor: value.get("replication_factor")?.as_f64()?,
        avg_occupancy: value.get("avg_occupancy")?.as_f64()?,
        max_occupancy: value.get("max_occupancy")?.as_u64()?,
        predicted_cells_per_query: value.get("predicted_cells_per_query")?.as_f64()?,
        predicted_cost_per_query: value.get("predicted_cost_per_query")?.as_f64()?,
    })
}

fn tree_json(t: &TreeQuality) -> String {
    format!(
        "{{\"height\":{},\"nodes\":{},\"avg_fill\":{},\"fill_per_level\":{},\
         \"overlap_factor_per_level\":{},\"dead_space_per_level\":{},\
         \"perimeter_per_level\":{}}}",
        t.height,
        t.nodes,
        fmt_f64(t.avg_fill),
        f64_list(&t.fill_per_level),
        f64_list(&t.overlap_factor_per_level),
        f64_list(&t.dead_space_per_level),
        f64_list(&t.perimeter_per_level)
    )
}

fn f64_vec(value: &Json) -> Option<Vec<f64>> {
    value.as_array()?.iter().map(Json::as_f64).collect()
}

fn tree_from_json(value: &Json) -> Option<TreeQuality> {
    Some(TreeQuality {
        height: value.get("height")?.as_u64()?,
        nodes: value.get("nodes")?.as_u64()?,
        avg_fill: value.get("avg_fill")?.as_f64()?,
        fill_per_level: f64_vec(value.get("fill_per_level")?)?,
        overlap_factor_per_level: f64_vec(value.get("overlap_factor_per_level")?)?,
        dead_space_per_level: f64_vec(value.get("dead_space_per_level")?)?,
        perimeter_per_level: f64_vec(value.get("perimeter_per_level")?)?,
    })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn sample_report(observed: bool) -> ExplainReport {
        ExplainReport {
            model: "acyclic".into(),
            expected_solutions: 1.25,
            edges: vec![
                EdgeExplain {
                    a: 0,
                    b: 1,
                    predicate: "intersects".into(),
                    estimated_selectivity: 0.04,
                    observed_selectivity: observed.then_some(0.05),
                    observed_pairs: observed.then_some(2_000),
                },
                EdgeExplain {
                    a: 1,
                    b: 2,
                    predicate: "intersects".into(),
                    estimated_selectivity: 0.04,
                    observed_selectivity: None,
                    observed_pairs: None,
                },
            ],
            vars: (0..3)
                .map(|v| VarExplain {
                    var: v,
                    cardinality: 200,
                    avg_extent: 0.05,
                    expected_window_hits: 8.0,
                    predicted_accesses_per_query: 3.5,
                    observed_accesses: if observed { 40 + v } else { 0 },
                    accesses_per_level: if observed {
                        vec![30 + v, 10]
                    } else {
                        vec![0, 0]
                    },
                    tree: TreeQuality {
                        height: 2,
                        nodes: 14,
                        avg_fill: 0.9,
                        fill_per_level: vec![0.93, 0.81],
                        overlap_factor_per_level: vec![0.4, 0.02],
                        dead_space_per_level: vec![0.3, 0.1],
                        perimeter_per_level: vec![5.2, 2.1],
                    },
                    // Mix Some/None so the round-trip test covers both the
                    // grid-backend and the R*-tree serialisations.
                    grid: (v == 1).then_some(GridQuality {
                        cells: 16,
                        occupied_cells: 12,
                        replication_factor: 1.4,
                        avg_occupancy: 23.3,
                        max_occupancy: 61,
                        predicted_cells_per_query: 5.5,
                        predicted_cost_per_query: 128.15,
                    }),
                })
                .collect(),
            observed_node_accesses: observed.then_some(123),
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        for observed in [false, true] {
            let report = sample_report(observed);
            let json = format!("{{{}}}", report.to_json_fields());
            let parsed = ExplainReport::from_json(&Json::parse(&json).unwrap()).unwrap();
            assert_eq!(parsed, report);
        }
    }

    #[test]
    fn error_factor_is_symmetric_and_none_when_unobserved() {
        let report = sample_report(true);
        let e = &report.edges[0];
        let f = e.error_factor().unwrap();
        assert!((f - 1.25).abs() < 1e-12, "0.05/0.04 = 1.25, got {f}");
        let mut flipped = e.clone();
        flipped.estimated_selectivity = 0.05;
        flipped.observed_selectivity = Some(0.04);
        assert!((flipped.error_factor().unwrap() - f).abs() < 1e-12);
        assert_eq!(report.edges[1].error_factor(), None);
    }

    #[test]
    fn attributed_accesses_sum_per_var_totals() {
        let report = sample_report(true);
        assert_eq!(report.attributed_accesses(), 40 + 41 + 42);
        assert!(report.has_observed());
        assert!(!sample_report(false).has_observed());
    }

    #[test]
    fn missing_required_field_fails_parse() {
        let report = sample_report(true);
        let json = format!("{{{}}}", report.to_json_fields());
        let broken = json.replace("\"model\":\"acyclic\",", "");
        assert!(ExplainReport::from_json(&Json::parse(&broken).unwrap()).is_none());
    }
}
