//! Structured run events and JSONL sinks.
//!
//! Every event serialises to one JSON object per line with a
//! discriminating `"event"` field; the full schema is documented in
//! `DESIGN.md` ("Observability") and machine-checked by [`crate::schema`].
//! Producers emit through the object-safe [`EventSink`] trait so the same
//! instrumentation can stream to a file ([`JsonlSink`]) or be captured
//! in-memory for tests ([`VecSink`]).

use crate::json::{escape, fmt_f64};
use crate::registry::MetricsSnapshot;
use crate::timer::PhaseSnapshot;
use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;

/// One structured run event.
///
/// `restart` fields are `Some` when the event was produced inside a
/// portfolio restart (carrying the restart's seed-order index) and `None`
/// for standalone runs.
#[derive(Debug, Clone, PartialEq)]
pub enum RunEvent {
    /// A run (one CLI `solve`/`join` invocation or one bench run) begins.
    RunStart {
        /// Algorithm name (e.g. `"ILS"`, `"SEA"`, `"WR"`).
        algo: String,
        /// Number of query variables.
        n_vars: u64,
        /// Number of join edges.
        edges: u64,
        /// Portfolio restarts requested (1 for single runs).
        restarts: u64,
        /// Worker threads requested (0 = auto).
        threads: u64,
        /// Master RNG seed.
        seed: u64,
        /// Step budget, when one was set.
        budget_steps: Option<u64>,
        /// Time budget in seconds, when one was set.
        budget_secs: Option<f64>,
    },
    /// A portfolio restart begins.
    RestartStart {
        /// Seed-order index of the restart.
        restart: u64,
        /// Derived RNG seed of the restart.
        seed: u64,
    },
    /// The incumbent best solution improved.
    Improvement {
        /// Restart index, when inside a portfolio.
        restart: Option<u64>,
        /// Steps consumed when the improvement happened.
        step: u64,
        /// Violations of the new incumbent.
        violations: u64,
        /// Similarity of the new incumbent.
        similarity: f64,
        /// Seconds since the run started.
        elapsed_secs: f64,
    },
    /// A portfolio restart finished.
    RestartEnd {
        /// Seed-order index of the restart.
        restart: u64,
        /// Violations of the restart's best solution.
        best_violations: u64,
        /// Steps the restart consumed.
        steps: u64,
        /// Seconds the restart ran.
        elapsed_secs: f64,
    },
    /// The step or time budget ran out.
    BudgetExhausted {
        /// Restart index, when inside a portfolio.
        restart: Option<u64>,
        /// Steps consumed at exhaustion.
        steps: u64,
        /// Seconds since the run started.
        elapsed_secs: f64,
    },
    /// The portfolio cutoff stopped this run because a sibling restart
    /// already reached an exact solution.
    CutoffFired {
        /// Restart index, when inside a portfolio.
        restart: Option<u64>,
        /// Steps consumed when the cutoff fired.
        steps: u64,
        /// Seconds since the run started.
        elapsed_secs: f64,
    },
    /// One convergence-trace point (used by `--trace-out`).
    TracePoint {
        /// Steps consumed at this point.
        step: u64,
        /// Best similarity at this point.
        similarity: f64,
        /// Seconds since the run started.
        elapsed_secs: f64,
    },
    /// Periodic live-telemetry heartbeat, emitted by the search driver
    /// every `progress_every` steps. The cadence is **step-indexed**, so
    /// every counter-valued field (step, best violations/similarity,
    /// node accesses, cache counters, resident bytes) is deterministic
    /// under a step budget; `steps_per_sec` and `elapsed_secs` are
    /// measured wall-clock and exempt, like bench-snapshot wall fields.
    Progress {
        /// Restart index, when inside a portfolio.
        restart: Option<u64>,
        /// Steps consumed at this heartbeat.
        step: u64,
        /// Measured step throughput since the run started.
        steps_per_sec: f64,
        /// Seconds since the run started.
        elapsed_secs: f64,
        /// Violations of the incumbent, once one exists.
        best_violations: Option<u64>,
        /// Similarity of the incumbent, once one exists.
        best_similarity: Option<f64>,
        /// R*-tree node accesses so far.
        node_accesses: u64,
        /// Window-cache hits at the last deterministic sample point.
        cache_hits: u64,
        /// Window-cache misses at the last deterministic sample point.
        cache_misses: u64,
        /// Resident bytes (instance index structures + window cache).
        resident_bytes: u64,
    },
    /// The stall watchdog observed no incumbent improvement for the
    /// configured step and/or wall window. Emitted once per stall episode
    /// (re-armed by the next improvement).
    StallDetected {
        /// Restart index, when inside a portfolio.
        restart: Option<u64>,
        /// Steps consumed when the stall was detected.
        step: u64,
        /// Steps since the last incumbent improvement (or run start).
        steps_since_improvement: u64,
        /// Seconds since the last incumbent improvement (measured).
        secs_since_improvement: f64,
        /// Seconds since the run started.
        elapsed_secs: f64,
    },
    /// The stall watchdog aborted the run (`--stall-abort`): a distinct
    /// stop reason riding the same cutoff machinery as `cutoff_fired`.
    StallAborted {
        /// Restart index, when inside a portfolio.
        restart: Option<u64>,
        /// Steps consumed when the abort fired.
        steps: u64,
        /// Seconds since the run started.
        elapsed_secs: f64,
    },
    /// GILS reseeded from a fresh random solution after
    /// `stagnation_reseed` punishment rounds without improvement.
    StagnationReseed {
        /// Restart index, when inside a portfolio.
        restart: Option<u64>,
        /// Steps consumed when the reseed fired.
        step: u64,
        /// Punishment rounds without improvement that triggered it.
        rounds: u64,
        /// Seconds since the run started.
        elapsed_secs: f64,
    },
    /// Frozen metrics of the run (or the merged portfolio metrics).
    Metrics {
        /// The snapshot.
        snapshot: MetricsSnapshot,
    },
    /// Frozen phase-timer aggregates of the run.
    Phases {
        /// Per-phase aggregates, sorted by path.
        phases: Vec<PhaseSnapshot>,
    },
    /// Estimated-vs-observed cost audit of the run (see
    /// [`crate::explain::ExplainReport`]). Emitted once per top-level run
    /// just before `resource_report`; `mwsj explain` emits the pre-run
    /// estimate-only form.
    ExplainReport {
        /// The report.
        report: crate::explain::ExplainReport,
    },
    /// Deterministic memory footprint of the run's resident structures
    /// (see [`crate::resource::MemoryFootprint`]).
    ResourceReport {
        /// The component → bytes table.
        report: crate::resource::ResourceReport,
    },
    /// The run finished.
    RunEnd {
        /// Violations of the best solution found.
        best_violations: u64,
        /// Similarity of the best solution found.
        best_similarity: f64,
        /// Total steps consumed.
        steps: u64,
        /// Total R*-tree node accesses.
        node_accesses: u64,
        /// Local maxima reached.
        local_maxima: u64,
        /// Incumbent improvements.
        improvements: u64,
        /// Restarts (portfolio restarts, or ILS internal restarts for a
        /// single run).
        restarts: u64,
        /// Total wall-clock seconds.
        elapsed_secs: f64,
        /// Whether the result was proven optimal.
        proven_optimal: bool,
    },
}

impl RunEvent {
    /// The value of the discriminating `"event"` field.
    pub fn kind(&self) -> &'static str {
        match self {
            RunEvent::RunStart { .. } => "run_start",
            RunEvent::RestartStart { .. } => "restart_start",
            RunEvent::Improvement { .. } => "improvement",
            RunEvent::RestartEnd { .. } => "restart_end",
            RunEvent::BudgetExhausted { .. } => "budget_exhausted",
            RunEvent::CutoffFired { .. } => "cutoff_fired",
            RunEvent::TracePoint { .. } => "trace_point",
            RunEvent::Progress { .. } => "progress",
            RunEvent::StallDetected { .. } => "stall_detected",
            RunEvent::StallAborted { .. } => "stall_aborted",
            RunEvent::StagnationReseed { .. } => "stagnation_reseed",
            RunEvent::Metrics { .. } => "metrics",
            RunEvent::Phases { .. } => "phases",
            RunEvent::ExplainReport { .. } => "explain_report",
            RunEvent::ResourceReport { .. } => "resource_report",
            RunEvent::RunEnd { .. } => "run_end",
        }
    }

    /// Serialises the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut obj = JsonObj::new(self.kind());
        match self {
            RunEvent::RunStart {
                algo,
                n_vars,
                edges,
                restarts,
                threads,
                seed,
                budget_steps,
                budget_secs,
            } => {
                obj.str("algo", algo);
                obj.u64("n_vars", *n_vars);
                obj.u64("edges", *edges);
                obj.u64("restarts", *restarts);
                obj.u64("threads", *threads);
                obj.u64("seed", *seed);
                if let Some(steps) = budget_steps {
                    obj.u64("budget_steps", *steps);
                }
                if let Some(secs) = budget_secs {
                    obj.f64("budget_secs", *secs);
                }
            }
            RunEvent::RestartStart { restart, seed } => {
                obj.u64("restart", *restart);
                obj.u64("seed", *seed);
            }
            RunEvent::Improvement {
                restart,
                step,
                violations,
                similarity,
                elapsed_secs,
            } => {
                if let Some(r) = restart {
                    obj.u64("restart", *r);
                }
                obj.u64("step", *step);
                obj.u64("violations", *violations);
                obj.f64("similarity", *similarity);
                obj.f64("elapsed_secs", *elapsed_secs);
            }
            RunEvent::RestartEnd {
                restart,
                best_violations,
                steps,
                elapsed_secs,
            } => {
                obj.u64("restart", *restart);
                obj.u64("best_violations", *best_violations);
                obj.u64("steps", *steps);
                obj.f64("elapsed_secs", *elapsed_secs);
            }
            RunEvent::BudgetExhausted {
                restart,
                steps,
                elapsed_secs,
            }
            | RunEvent::CutoffFired {
                restart,
                steps,
                elapsed_secs,
            } => {
                if let Some(r) = restart {
                    obj.u64("restart", *r);
                }
                obj.u64("steps", *steps);
                obj.f64("elapsed_secs", *elapsed_secs);
            }
            RunEvent::TracePoint {
                step,
                similarity,
                elapsed_secs,
            } => {
                obj.u64("step", *step);
                obj.f64("similarity", *similarity);
                obj.f64("elapsed_secs", *elapsed_secs);
            }
            RunEvent::Progress {
                restart,
                step,
                steps_per_sec,
                elapsed_secs,
                best_violations,
                best_similarity,
                node_accesses,
                cache_hits,
                cache_misses,
                resident_bytes,
            } => {
                if let Some(r) = restart {
                    obj.u64("restart", *r);
                }
                obj.u64("step", *step);
                obj.f64("steps_per_sec", *steps_per_sec);
                obj.f64("elapsed_secs", *elapsed_secs);
                if let Some(v) = best_violations {
                    obj.u64("best_violations", *v);
                }
                if let Some(s) = best_similarity {
                    obj.f64("best_similarity", *s);
                }
                obj.u64("node_accesses", *node_accesses);
                obj.u64("cache_hits", *cache_hits);
                obj.u64("cache_misses", *cache_misses);
                obj.u64("resident_bytes", *resident_bytes);
            }
            RunEvent::StallDetected {
                restart,
                step,
                steps_since_improvement,
                secs_since_improvement,
                elapsed_secs,
            } => {
                if let Some(r) = restart {
                    obj.u64("restart", *r);
                }
                obj.u64("step", *step);
                obj.u64("steps_since_improvement", *steps_since_improvement);
                obj.f64("secs_since_improvement", *secs_since_improvement);
                obj.f64("elapsed_secs", *elapsed_secs);
            }
            RunEvent::StallAborted {
                restart,
                steps,
                elapsed_secs,
            } => {
                if let Some(r) = restart {
                    obj.u64("restart", *r);
                }
                obj.u64("steps", *steps);
                obj.f64("elapsed_secs", *elapsed_secs);
            }
            RunEvent::StagnationReseed {
                restart,
                step,
                rounds,
                elapsed_secs,
            } => {
                if let Some(r) = restart {
                    obj.u64("restart", *r);
                }
                obj.u64("step", *step);
                obj.u64("rounds", *rounds);
                obj.f64("elapsed_secs", *elapsed_secs);
            }
            RunEvent::Metrics { snapshot } => {
                obj.raw("counters", &counters_json(&snapshot.counters));
                obj.raw("gauges", &gauges_json(&snapshot.gauges));
                obj.raw("histograms", &histograms_json(&snapshot.histograms));
            }
            RunEvent::Phases { phases } => {
                obj.raw("phases", &phases_json(phases));
            }
            RunEvent::ExplainReport { report } => {
                obj.out.push(',');
                obj.out.push_str(&report.to_json_fields());
            }
            RunEvent::ResourceReport { report } => {
                obj.u64("total_bytes", report.total_bytes());
                obj.raw("components", &counters_json(report.components()));
            }
            RunEvent::RunEnd {
                best_violations,
                best_similarity,
                steps,
                node_accesses,
                local_maxima,
                improvements,
                restarts,
                elapsed_secs,
                proven_optimal,
            } => {
                obj.u64("best_violations", *best_violations);
                obj.f64("best_similarity", *best_similarity);
                obj.u64("steps", *steps);
                obj.u64("node_accesses", *node_accesses);
                obj.u64("local_maxima", *local_maxima);
                obj.u64("improvements", *improvements);
                obj.u64("restarts", *restarts);
                obj.f64("elapsed_secs", *elapsed_secs);
                obj.bool("proven_optimal", *proven_optimal);
            }
        }
        obj.finish()
    }
}

/// Tiny builder for one flat JSON object line.
struct JsonObj {
    out: String,
}

impl JsonObj {
    fn new(kind: &str) -> Self {
        JsonObj {
            out: format!("{{\"event\":{}", escape(kind)),
        }
    }
    fn key(&mut self, key: &str) {
        self.out.push(',');
        self.out.push_str(&escape(key));
        self.out.push(':');
    }
    fn str(&mut self, key: &str, value: &str) {
        self.key(key);
        self.out.push_str(&escape(value));
    }
    fn u64(&mut self, key: &str, value: u64) {
        self.key(key);
        self.out.push_str(&value.to_string());
    }
    fn f64(&mut self, key: &str, value: f64) {
        self.key(key);
        self.out.push_str(&fmt_f64(value));
    }
    fn bool(&mut self, key: &str, value: bool) {
        self.key(key);
        self.out.push_str(if value { "true" } else { "false" });
    }
    fn raw(&mut self, key: &str, json: &str) {
        self.key(key);
        self.out.push_str(json);
    }
    fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

fn counters_json(counters: &[(String, u64)]) -> String {
    let body: Vec<String> = counters
        .iter()
        .map(|(k, v)| format!("{}:{v}", escape(k)))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn gauges_json(gauges: &[(String, f64)]) -> String {
    let body: Vec<String> = gauges
        .iter()
        .map(|(k, v)| format!("{}:{}", escape(k), fmt_f64(*v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn histograms_json(histograms: &[(String, crate::HistogramSnapshot)]) -> String {
    let body: Vec<String> = histograms
        .iter()
        .map(|(k, h)| {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(b, n)| format!("[{b},{n}]"))
                .collect();
            format!(
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
                escape(k),
                h.count,
                h.sum,
                h.min,
                h.max,
                buckets.join(",")
            )
        })
        .collect();
    format!("{{{}}}", body.join(","))
}

fn phases_json(phases: &[PhaseSnapshot]) -> String {
    let body: Vec<String> = phases
        .iter()
        .map(|p| {
            format!(
                "{{\"path\":{},\"calls\":{},\"steps\":{},\"wall_secs\":{}}}",
                escape(&p.path),
                p.calls,
                p.steps,
                fmt_f64(p.wall.as_secs_f64())
            )
        })
        .collect();
    format!("[{}]", body.join(","))
}

/// Receives run events. Implementations must tolerate concurrent emitters
/// (portfolio restarts run on worker threads).
pub trait EventSink: Send + Sync {
    /// Handles one event.
    fn emit(&self, event: &RunEvent);

    /// Records this sink's own resident bytes into `report`, so
    /// `resource_report` accounts for the observability layer itself. Only
    /// sinks that retain events (the flight recorder) have anything to
    /// report; the default is a no-op.
    fn fill_resource_report(&self, report: &mut crate::resource::ResourceReport) {
        let _ = report;
    }
}

/// When a [`JsonlSink`] pushes bytes to its underlying writer.
///
/// `Buffered` is the post-hoc default: lines accumulate in the
/// `BufWriter` and reach the file on drop — cheapest, but a concurrent
/// tail sees nothing until the run ends. `PerEvent` flushes after every
/// line so a live reader (`mwsj watch`) sees each event promptly; used by
/// `solve --follow`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushPolicy {
    /// Buffer lines; flush on [`JsonlSink::flush`] or drop.
    #[default]
    Buffered,
    /// Flush the writer after every emitted line.
    PerEvent,
}

/// Streams events to a writer as JSON Lines. I/O errors are swallowed
/// (observability must never fail the search).
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
    policy: FlushPolicy,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Creates a [`FlushPolicy::Buffered`] sink writing to `writer`.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink::with_policy(writer, FlushPolicy::Buffered)
    }

    /// Creates a sink writing to `writer` under the given flush policy.
    pub fn with_policy(writer: Box<dyn Write + Send>, policy: FlushPolicy) -> Self {
        JsonlSink {
            out: Mutex::new(writer),
            policy,
        }
    }

    /// Creates (truncating) the file at `path` and streams events to it
    /// under [`FlushPolicy::Buffered`].
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        JsonlSink::create_with(path, FlushPolicy::Buffered)
    }

    /// Creates (truncating) the file at `path` and streams events to it
    /// under the given flush policy.
    pub fn create_with<P: AsRef<Path>>(path: P, policy: FlushPolicy) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::with_policy(
            Box::new(io::BufWriter::new(file)),
            policy,
        ))
    }

    /// The sink's flush policy.
    pub fn policy(&self) -> FlushPolicy {
        self.policy
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) {
        let _ = self.out.lock().expect("sink mutex").flush();
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, event: &RunEvent) {
        let line = event.to_json();
        let mut out = self.out.lock().expect("sink mutex");
        let _ = writeln!(out, "{line}");
        if self.policy == FlushPolicy::PerEvent {
            let _ = out.flush();
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

/// Forwards every event to each inner sink, in order. Lets one run stream
/// to a JSONL file and feed a [`FlightRecorder`](crate::FlightRecorder)
/// at the same time.
#[derive(Default)]
pub struct FanoutSink {
    sinks: Vec<std::sync::Arc<dyn EventSink>>,
}

impl std::fmt::Debug for FanoutSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl FanoutSink {
    /// Creates a fanout over the given sinks.
    pub fn new(sinks: Vec<std::sync::Arc<dyn EventSink>>) -> Self {
        FanoutSink { sinks }
    }
}

impl EventSink for FanoutSink {
    fn emit(&self, event: &RunEvent) {
        for sink in &self.sinks {
            sink.emit(event);
        }
    }

    fn fill_resource_report(&self, report: &mut crate::resource::ResourceReport) {
        for sink in &self.sinks {
            sink.fill_resource_report(report);
        }
    }
}

/// Captures events in memory (for tests and the bench harness).
#[derive(Debug, Default)]
pub struct VecSink {
    events: Mutex<Vec<RunEvent>>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// A copy of the captured events, in emission order.
    pub fn events(&self) -> Vec<RunEvent> {
        self.events.lock().expect("sink mutex").clone()
    }

    /// Drains the captured events.
    pub fn take(&self) -> Vec<RunEvent> {
        std::mem::take(&mut *self.events.lock().expect("sink mutex"))
    }
}

impl EventSink for VecSink {
    fn emit(&self, event: &RunEvent) {
        self.events.lock().expect("sink mutex").push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::registry::MetricsRegistry;
    use std::time::Duration;

    #[test]
    fn every_event_serialises_to_parseable_json() {
        let reg = MetricsRegistry::new();
        reg.counter("search.steps").add(3);
        reg.gauge("g").set(0.5);
        reg.histogram("h").record(4);
        let events = vec![
            RunEvent::RunStart {
                algo: "ILS".into(),
                n_vars: 5,
                edges: 4,
                restarts: 4,
                threads: 1,
                seed: 42,
                budget_steps: Some(1000),
                budget_secs: None,
            },
            RunEvent::RestartStart {
                restart: 0,
                seed: 7,
            },
            RunEvent::Improvement {
                restart: Some(0),
                step: 12,
                violations: 2,
                similarity: 0.5,
                elapsed_secs: 0.001,
            },
            RunEvent::RestartEnd {
                restart: 0,
                best_violations: 2,
                steps: 250,
                elapsed_secs: 0.1,
            },
            RunEvent::BudgetExhausted {
                restart: None,
                steps: 1000,
                elapsed_secs: 0.2,
            },
            RunEvent::CutoffFired {
                restart: Some(3),
                steps: 40,
                elapsed_secs: 0.05,
            },
            RunEvent::TracePoint {
                step: 10,
                similarity: 0.75,
                elapsed_secs: 0.01,
            },
            RunEvent::Progress {
                restart: Some(1),
                step: 200,
                steps_per_sec: 15000.0,
                elapsed_secs: 0.013,
                best_violations: Some(1),
                best_similarity: Some(0.75),
                node_accesses: 512,
                cache_hits: 40,
                cache_misses: 12,
                resident_bytes: 65536,
            },
            RunEvent::Progress {
                restart: None,
                step: 50,
                steps_per_sec: 0.0,
                elapsed_secs: 0.0,
                best_violations: None,
                best_similarity: None,
                node_accesses: 0,
                cache_hits: 0,
                cache_misses: 0,
                resident_bytes: 1024,
            },
            RunEvent::StallDetected {
                restart: Some(0),
                step: 900,
                steps_since_improvement: 500,
                secs_since_improvement: 0.2,
                elapsed_secs: 0.3,
            },
            RunEvent::StallAborted {
                restart: None,
                steps: 950,
                elapsed_secs: 0.31,
            },
            RunEvent::StagnationReseed {
                restart: None,
                step: 430,
                rounds: 1000,
                elapsed_secs: 0.1,
            },
            RunEvent::Metrics {
                snapshot: reg.snapshot(),
            },
            RunEvent::Phases {
                phases: vec![PhaseSnapshot {
                    path: "solve > restart[0]".into(),
                    calls: 1,
                    steps: 5,
                    wall: Duration::from_millis(2),
                }],
            },
            RunEvent::ResourceReport {
                report: {
                    let mut r = crate::resource::ResourceReport::new();
                    r.record("rtree.var000", 1024);
                    r.record("window_cache", 96);
                    r
                },
            },
            RunEvent::RunEnd {
                best_violations: 0,
                best_similarity: 1.0,
                steps: 1000,
                node_accesses: 345,
                local_maxima: 3,
                improvements: 4,
                restarts: 4,
                elapsed_secs: 0.2,
                proven_optimal: false,
            },
        ];
        for event in &events {
            let line = event.to_json();
            let parsed = Json::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(parsed.get("event").unwrap().as_str(), Some(event.kind()));
        }
    }

    #[test]
    fn metrics_event_embeds_snapshot_values() {
        let reg = MetricsRegistry::new();
        reg.counter("steps").add(17);
        reg.histogram("h").record(5);
        let line = RunEvent::Metrics {
            snapshot: reg.snapshot(),
        }
        .to_json();
        let parsed = Json::parse(&line).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .unwrap()
                .get("steps")
                .unwrap()
                .as_u64(),
            Some(17)
        );
        let h = parsed.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(h.get("sum").unwrap().as_u64(), Some(5));
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let dir = std::env::temp_dir().join("mwsj-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("sink-{}.jsonl", std::process::id()));
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.emit(&RunEvent::TracePoint {
                step: 1,
                similarity: 0.5,
                elapsed_secs: 0.0,
            });
            sink.emit(&RunEvent::TracePoint {
                step: 2,
                similarity: 0.6,
                elapsed_secs: 0.1,
            });
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            Json::parse(line).unwrap();
        }
    }

    #[test]
    fn per_event_flush_is_visible_to_a_concurrent_reader() {
        let dir = std::env::temp_dir().join("mwsj-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = |step| RunEvent::TracePoint {
            step,
            similarity: 0.5,
            elapsed_secs: 0.0,
        };

        // Buffered: a reader tailing the live file sees nothing until the
        // sink is dropped (this is the behaviour --follow exists to fix).
        let buffered = dir.join(format!("buffered-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&buffered).unwrap();
        sink.emit(&trace(1));
        assert_eq!(
            std::fs::read_to_string(&buffered).unwrap(),
            "",
            "buffered sink must not reach the file before flush/drop"
        );
        drop(sink);
        assert_eq!(
            std::fs::read_to_string(&buffered).unwrap().lines().count(),
            1
        );
        std::fs::remove_file(&buffered).ok();

        // Per-event: every line is readable immediately after emit, while
        // the sink is still live.
        let live = dir.join(format!("live-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create_with(&live, FlushPolicy::PerEvent).unwrap();
        for step in 1..=3 {
            sink.emit(&trace(step));
            let text = std::fs::read_to_string(&live).unwrap();
            assert_eq!(
                text.lines().count(),
                step as usize,
                "line {step} must be visible promptly"
            );
            assert!(text.ends_with('\n'), "only complete lines on disk");
            for line in text.lines() {
                Json::parse(line).unwrap();
            }
        }
        drop(sink);
        std::fs::remove_file(&live).ok();
    }

    #[test]
    fn fanout_collects_sink_resources() {
        let recorder = std::sync::Arc::new(crate::FlightRecorder::new());
        recorder.emit(&RunEvent::TracePoint {
            step: 1,
            similarity: 0.5,
            elapsed_secs: 0.0,
        });
        let fanout = FanoutSink::new(vec![std::sync::Arc::new(VecSink::new()), recorder.clone()]);
        let mut report = crate::resource::ResourceReport::new();
        fanout.fill_resource_report(&mut report);
        assert_eq!(
            report.component("flight_recorder"),
            Some(recorder.byte_len() as u64)
        );
        assert!(report.component("flight_recorder").unwrap() > 0);
    }

    #[test]
    fn vec_sink_captures_in_order() {
        let sink = VecSink::new();
        sink.emit(&RunEvent::RestartStart {
            restart: 0,
            seed: 1,
        });
        sink.emit(&RunEvent::RestartStart {
            restart: 1,
            seed: 2,
        });
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert!(sink.events().is_empty());
        assert_eq!(events[0].kind(), "restart_start");
    }
}
