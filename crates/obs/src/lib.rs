//! Dependency-free observability layer for the multiway-spatial-join
//! workspace.
//!
//! The paper's whole evaluation (Figs. 10a–c, 11 of *Papadias &
//! Arkoumanis, EDBT 2002*) is instrumentation: similarity-over-time
//! convergence, node accesses and step counts. This crate centralises that
//! bookkeeping behind three cooperating pieces:
//!
//! * [`MetricsRegistry`] — named counters, gauges and log₂-bucketed
//!   histograms. A registry handle is either *enabled* (backed by shared
//!   atomic cells) or *disabled* (every operation is a single `Option`
//!   check), so instrumented code pays near-zero cost when observability
//!   is off.
//! * [`PhaseTimer`] — hierarchical wall-clock spans
//!   (`solve > restart[3] > find_best_value`) with per-phase call counts
//!   and step attribution.
//!   Disabled timers never call [`std::time::Instant::now`].
//! * [`RunEvent`] / [`EventSink`] — a structured run-event stream (run
//!   start/end, incumbent improvements, restart lifecycle, budget
//!   exhaustion, cutoff firings) serialised as JSON Lines. The schema is
//!   documented in `DESIGN.md` and validated by [`schema::validate_line`]
//!   (also available as the `mwsj-schema-check` binary).
//!
//! [`ObsHandle`] bundles the three for threading through search contexts.
//!
//! On top of the raw streams sit the performance-trajectory tools:
//! [`AnytimeCurve`] folds improvement events into the paper's
//! similarity-vs-cost convergence curves (with quality-AUC and
//! time-to-τ summaries), [`BenchSnapshot`] is the schema-validated
//! `BENCH_<label>.json` format produced by `mwsj bench snapshot`,
//! [`compare`](mod@compare) is the noise-aware regression gate behind
//! `mwsj bench compare`, and [`profile::to_folded`] exports phase timers as
//! flamegraph-ready folded stacks.
//!
//! **Determinism contract.** Metric *values* flushed by the search layer
//! are pure counters of algorithmic work (steps, node accesses, …) and are
//! bit-identical across thread counts under a step budget; wall-clock
//! lives only in timers and events, which are exempt. See
//! [`MetricsSnapshot::merge`] for the portfolio reduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod curve;
pub mod events;
pub mod explain;
pub mod handle;
pub mod json;
pub mod profile;
pub mod registry;
pub mod resource;
pub mod schema;
pub mod snapshot;
pub mod suite_key;
pub mod timer;

pub use compare::{
    compare, CompareConfig, CompareReport, Verdict, DEFAULT_WALL_SLACK_MS, DEFAULT_WALL_TOLERANCE,
};
pub use curve::{AnytimeCurve, CurvePoint};
pub use events::{EventSink, FanoutSink, FlushPolicy, JsonlSink, RunEvent, VecSink};
pub use explain::{EdgeExplain, ExplainReport, GridQuality, TreeQuality, VarExplain};
pub use handle::ObsHandle;
pub use json::Json;
pub use profile::{folded_root_totals, parse_folded, to_folded};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use resource::{
    FlightRecorder, MemoryFootprint, ResourceReport, DEFAULT_FLIGHT_RECORDER_BYTES,
};
pub use snapshot::{
    AlgoRecord, BenchSnapshot, CacheRecord, ExplainRecord, InstanceRecord, MemoryRecord,
    SnapshotError, SNAPSHOT_FORMAT, SNAPSHOT_SECTIONS, SNAPSHOT_VERSION,
};
pub use suite_key::SuiteKey;
pub use timer::{merge_phase_snapshots, PhaseSnapshot, PhaseSpan, PhaseTimer};
