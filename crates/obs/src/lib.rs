//! Dependency-free observability layer for the multiway-spatial-join
//! workspace.
//!
//! The paper's whole evaluation (Figs. 10a–c, 11 of *Papadias &
//! Arkoumanis, EDBT 2002*) is instrumentation: similarity-over-time
//! convergence, node accesses and step counts. This crate centralises that
//! bookkeeping behind three cooperating pieces:
//!
//! * [`MetricsRegistry`] — named counters, gauges and log₂-bucketed
//!   histograms. A registry handle is either *enabled* (backed by shared
//!   atomic cells) or *disabled* (every operation is a single `Option`
//!   check), so instrumented code pays near-zero cost when observability
//!   is off.
//! * [`PhaseTimer`] — hierarchical wall-clock spans (`solve > restart[3]
//!   > find_best_value`) with per-phase call counts and step attribution.
//!   Disabled timers never call [`std::time::Instant::now`].
//! * [`RunEvent`] / [`EventSink`] — a structured run-event stream (run
//!   start/end, incumbent improvements, restart lifecycle, budget
//!   exhaustion, cutoff firings) serialised as JSON Lines. The schema is
//!   documented in `DESIGN.md` and validated by [`schema::validate_line`]
//!   (also available as the `mwsj-schema-check` binary).
//!
//! [`ObsHandle`] bundles the three for threading through search contexts.
//!
//! **Determinism contract.** Metric *values* flushed by the search layer
//! are pure counters of algorithmic work (steps, node accesses, …) and are
//! bit-identical across thread counts under a step budget; wall-clock
//! lives only in timers and events, which are exempt. See
//! [`MetricsSnapshot::merge`] for the portfolio reduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod handle;
pub mod json;
pub mod registry;
pub mod schema;
pub mod timer;

pub use events::{EventSink, JsonlSink, RunEvent, VecSink};
pub use handle::ObsHandle;
pub use json::Json;
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use timer::{merge_phase_snapshots, PhaseSnapshot, PhaseSpan, PhaseTimer};
