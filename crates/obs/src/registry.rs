//! The metrics registry: named counters, gauges and log₂-bucketed
//! histograms behind cheap cloneable handles.
//!
//! A [`MetricsRegistry`] is either *enabled* (handles share atomic cells)
//! or *disabled* (handles are empty and every operation is one `Option`
//! discriminant check — no allocation, no atomics, no locks). Instrumented
//! code therefore keeps a handle unconditionally and never branches on an
//! "observability on?" flag itself.
//!
//! [`MetricsRegistry::snapshot`] freezes the registry into a
//! [`MetricsSnapshot`] — plain sorted vectors that are `PartialEq`,
//! mergeable and serialisable. Snapshots are the unit of the portfolio's
//! deterministic metric reduction: counters and histograms contain only
//! algorithmic-work counts (never wall-clock), so merging per-restart
//! snapshots in seed order yields bit-identical results for any thread
//! count under a step budget.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one for zero plus one per power of two up
/// to 2⁶³.
const BUCKETS: usize = 65;

/// Maps a value to its histogram bucket: `0 → 0`, otherwise
/// `⌊log₂ v⌋ + 1` (bucket `b ≥ 1` covers `[2^(b−1), 2^b)`).
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

#[derive(Debug)]
struct HistogramCell {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
}

/// A registry of named metrics. Cloning shares the underlying storage.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<RegistryInner>>,
}

impl MetricsRegistry {
    /// Creates an enabled, empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Some(Arc::new(RegistryInner::default())),
        }
    }

    /// Creates a disabled registry: every handle it hands out is a no-op.
    pub fn disabled() -> Self {
        MetricsRegistry { inner: None }
    }

    /// `true` when metrics are actually collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or looks up) a counter. On a disabled registry the
    /// returned handle is a no-op.
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            cell: self.inner.as_ref().map(|inner| {
                Arc::clone(
                    inner
                        .counters
                        .lock()
                        .expect("metrics mutex")
                        .entry(name.to_string())
                        .or_default(),
                )
            }),
        }
    }

    /// Registers (or looks up) a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge {
            cell: self.inner.as_ref().map(|inner| {
                Arc::clone(
                    inner
                        .gauges
                        .lock()
                        .expect("metrics mutex")
                        .entry(name.to_string())
                        .or_default(),
                )
            }),
        }
    }

    /// Registers (or looks up) a histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram {
            cell: self.inner.as_ref().map(|inner| {
                Arc::clone(
                    inner
                        .histograms
                        .lock()
                        .expect("metrics mutex")
                        .entry(name.to_string())
                        .or_default(),
                )
            }),
        }
    }

    /// Freezes the current metric values into a sorted, comparable
    /// snapshot. Disabled registries yield an empty snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let counters = inner
            .counters
            .lock()
            .expect("metrics mutex")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = inner
            .gauges
            .lock()
            .expect("metrics mutex")
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let histograms = inner
            .histograms
            .lock()
            .expect("metrics mutex")
            .iter()
            .map(|(k, cell)| {
                let count = cell.count.load(Ordering::Relaxed);
                (
                    k.clone(),
                    HistogramSnapshot {
                        count,
                        sum: cell.sum.load(Ordering::Relaxed),
                        min: if count == 0 {
                            0
                        } else {
                            cell.min.load(Ordering::Relaxed)
                        },
                        max: cell.max.load(Ordering::Relaxed),
                        buckets: cell
                            .buckets
                            .iter()
                            .enumerate()
                            .filter_map(|(i, b)| {
                                let n = b.load(Ordering::Relaxed);
                                (n > 0).then_some((i as u32, n))
                            })
                            .collect(),
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 on a disabled handle).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A gauge handle holding the latest `f64` value set.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.cell {
            cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 on a disabled handle).
    pub fn get(&self) -> f64 {
        self.cell
            .as_ref()
            .map_or(0.0, |cell| f64::from_bits(cell.load(Ordering::Relaxed)))
    }
}

/// A histogram handle recording `u64` observations into log₂ buckets.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    cell: Option<Arc<HistogramCell>>,
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(cell) = &self.cell {
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.sum.fetch_add(value, Ordering::Relaxed);
            cell.min.fetch_min(value, Ordering::Relaxed);
            cell.max.fetch_max(value, Ordering::Relaxed);
            cell.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Frozen histogram state: exact count/sum/min/max plus the non-empty
/// log₂ buckets as `(bucket_index, count)` pairs (see [`Histogram`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Non-empty buckets, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges another histogram into this one (count/sum add, min/max
    /// combine, buckets add pointwise).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        let mut merged: BTreeMap<u32, u64> = self.buckets.iter().copied().collect();
        for &(bucket, n) in &other.buckets {
            *merged.entry(bucket).or_insert(0) += n;
        }
        self.buckets = merged.into_iter().collect();
    }
}

/// All metrics of one registry frozen at a point in time, sorted by name.
///
/// Snapshots merge **deterministically**: counters and histogram contents
/// sum, gauges keep the maximum. The operation is associative and
/// commutative, so a fold over per-restart snapshots in seed order is
/// independent of which thread produced which snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, ascending by name.
    pub gauges: Vec<(String, f64)>,
    /// `(name, histogram)` pairs, ascending by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// Merges `other` into `self`: counters sum, gauges keep the maximum,
    /// histograms merge per [`HistogramSnapshot::merge`].
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        let mut counters: BTreeMap<String, u64> = self.counters.drain(..).collect();
        for (name, v) in &other.counters {
            *counters.entry(name.clone()).or_insert(0) += v;
        }
        self.counters = counters.into_iter().collect();

        let mut gauges: BTreeMap<String, f64> = self.gauges.drain(..).collect();
        for (name, v) in &other.gauges {
            gauges
                .entry(name.clone())
                .and_modify(|g| *g = g.max(*v))
                .or_insert(*v);
        }
        self.gauges = gauges.into_iter().collect();

        let mut histograms: BTreeMap<String, HistogramSnapshot> =
            self.histograms.drain(..).collect();
        for (name, h) in &other.histograms {
            histograms.entry(name.clone()).or_default().merge(h);
        }
        self.histograms = histograms.into_iter().collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_a_no_op() {
        let reg = MetricsRegistry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("x");
        c.add(5);
        assert_eq!(c.get(), 0);
        reg.gauge("g").set(1.0);
        reg.histogram("h").record(3);
        assert!(reg.snapshot().is_empty());
    }

    #[test]
    fn counters_share_storage_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("steps");
        let b = reg.counter("steps");
        a.add(2);
        b.inc();
        assert_eq!(reg.snapshot().counter("steps"), Some(3));
    }

    #[test]
    fn gauge_keeps_latest_value() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("similarity");
        g.set(0.25);
        g.set(0.75);
        assert_eq!(g.get(), 0.75);
        assert_eq!(reg.snapshot().gauges, vec![("similarity".into(), 0.75)]);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);

        let reg = MetricsRegistry::new();
        let h = reg.histogram("v");
        for v in [0, 1, 2, 3, 900] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let (_, hs) = &snap.histograms[0];
        assert_eq!(hs.count, 5);
        assert_eq!(hs.sum, 906);
        assert_eq!(hs.min, 0);
        assert_eq!(hs.max, 900);
        assert_eq!(hs.buckets, vec![(0, 1), (1, 1), (2, 2), (10, 1)]);
        assert!((hs.mean() - 181.2).abs() < 1e-9);
    }

    #[test]
    fn bucket_boundaries_at_exact_powers_of_two() {
        // Bucket b ≥ 1 covers [2^(b−1), 2^b): an exact power 2^k is the
        // *lowest* value of bucket k+1, never the top of bucket k.
        for k in 0..64u32 {
            let pow = 1u64 << k;
            assert_eq!(bucket_index(pow), k as usize + 1, "2^{k}");
            if pow > 1 {
                assert_eq!(bucket_index(pow - 1), k as usize, "2^{k} - 1");
            }
            // pow + 1 stays in bucket k+1 — except for k = 0, where
            // 2⁰ + 1 = 2 is itself the next power.
            if k > 0 && k < 63 {
                assert_eq!(bucket_index(pow + 1), k as usize + 1, "2^{k} + 1");
            }
        }
        // Top bucket: [2^63, u64::MAX] all land in bucket 64.
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn empty_histogram_snapshot_min_is_zero() {
        let reg = MetricsRegistry::new();
        let _ = reg.histogram("h");
        let snap = reg.snapshot();
        assert_eq!(snap.histograms[0].1.min, 0);
        assert_eq!(snap.histograms[0].1.mean(), 0.0);
    }

    #[test]
    fn snapshot_merge_is_order_independent() {
        let make = |steps: u64, obs: &[u64]| {
            let reg = MetricsRegistry::new();
            reg.counter("steps").add(steps);
            let h = reg.histogram("h");
            for &v in obs {
                h.record(v);
            }
            reg.gauge("g").set(steps as f64);
            reg.snapshot()
        };
        let a = make(10, &[1, 5]);
        let b = make(7, &[0, 64]);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("steps"), Some(17));
        assert_eq!(ab.gauges, vec![("g".into(), 10.0)]);
        let (_, h) = &ab.histograms[0];
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 64);
    }

    #[test]
    fn merge_with_empty_preserves_self() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(3);
        let mut snap = reg.snapshot();
        let before = snap.clone();
        snap.merge(&MetricsSnapshot::default());
        assert_eq!(snap, before);
    }
}
