//! Noise-aware comparison of two benchmark snapshots — the regression
//! gate behind `mwsj bench compare`.
//!
//! The comparison treats the two metric families of a snapshot
//! differently, following the workspace determinism contract:
//!
//! * **Deterministic fields** — work counters, `best_similarity`,
//!   `auc_steps`, `steps_to` — must match *exactly* (counters) or to
//!   floating-point round-off (derived values). Any drift means the
//!   algorithms themselves changed and fails the gate outright.
//! * **Measured fields** — the wall-clock medians — are compared with a
//!   relative tolerance band (default +25%) widened by an absolute slack
//!   (default +5ms): a candidate fails only when it exceeds both, so
//!   sub-millisecond jitter on tiny workloads does not read as a
//!   regression. Only the median of the recorded repetitions is gated;
//!   per-rep values and the wall-axis AUC are reported for context but
//!   never fail the comparison, since they are too noisy on shared CI
//!   runners.
//!
//! Missing or extra (instance, algorithm) pairs fail the gate: a
//! disappearing benchmark is a regression of coverage, not noise.

use crate::explain::ExplainReport;
use crate::snapshot::{AlgoRecord, BenchSnapshot};
use std::fmt::Write as _;

/// Relative wall-clock slowdown tolerated by default (0.25 = +25%).
pub const DEFAULT_WALL_TOLERANCE: f64 = 0.25;

/// Absolute wall-clock slack tolerated by default, in milliseconds.
///
/// Sub-10ms medians on shared runners jitter by fractions of a
/// millisecond, which a purely relative band misreads as a regression
/// (0.01ms on a 0.04ms median is +25%). A candidate therefore fails the
/// wall gate only when it exceeds **both** the relative band and this
/// absolute slack over the baseline.
pub const DEFAULT_WALL_SLACK_MS: f64 = 5.0;

/// Absolute tolerance for derived deterministic floats (round-off only).
const FLOAT_EPS: f64 = 1e-9;

/// Noise floor for the wall gate, in milliseconds: the relative band is
/// evaluated against `max(baseline, floor)`, because a percentage of a
/// 0.02ms median is pure scheduler jitter under *any* tolerance — this is
/// what lets `--wall-slack-ms 0` (relative-band-only gating, used by the
/// large-tier CI job) stay flake-free on instances that converge in
/// microseconds. A genuine regression still fails: the candidate must
/// exceed both `max(baseline, floor)·(1+tolerance)` and
/// `baseline + slack`.
pub const WALL_NOISE_FLOOR_MS: f64 = 1.0;

/// Comparison configuration.
#[derive(Debug, Clone, Copy)]
pub struct CompareConfig {
    /// Maximum tolerated relative wall-clock slowdown of the median
    /// (`0.25` fails candidates more than 25% slower than baseline).
    pub wall_tolerance: f64,
    /// Absolute wall-clock slack in milliseconds; a candidate median
    /// within `baseline + wall_slack_ms` never fails the wall gate even
    /// when the relative band is exceeded (noise floor for tiny
    /// workloads).
    pub wall_slack_ms: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            wall_tolerance: DEFAULT_WALL_TOLERANCE,
            wall_slack_ms: DEFAULT_WALL_SLACK_MS,
        }
    }
}

/// Severity of one comparison line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance (or informational only).
    Ok,
    /// A regression or determinism violation; fails the gate.
    Fail,
}

/// One finding of the comparison.
#[derive(Debug, Clone)]
pub struct CompareLine {
    /// `instance/algo` scope (empty for snapshot-level findings).
    pub scope: String,
    /// Severity.
    pub verdict: Verdict,
    /// Human-readable description.
    pub message: String,
}

/// The full comparison result.
#[derive(Debug, Clone, Default)]
pub struct CompareReport {
    /// Every finding, in suite order.
    pub lines: Vec<CompareLine>,
}

impl CompareReport {
    fn push(&mut self, scope: &str, verdict: Verdict, message: String) {
        self.lines.push(CompareLine {
            scope: scope.to_string(),
            verdict,
            message,
        });
    }

    /// Number of failing findings.
    pub fn failures(&self) -> usize {
        self.lines
            .iter()
            .filter(|l| l.verdict == Verdict::Fail)
            .count()
    }

    /// `true` when no finding fails the gate.
    pub fn passed(&self) -> bool {
        self.failures() == 0
    }

    /// Renders the report as the text `mwsj bench compare` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            let tag = match line.verdict {
                Verdict::Ok => "ok  ",
                Verdict::Fail => "FAIL",
            };
            if line.scope.is_empty() {
                let _ = writeln!(out, "{tag}  {}", line.message);
            } else {
                let _ = writeln!(out, "{tag}  {}: {}", line.scope, line.message);
            }
        }
        let _ = match self.failures() {
            0 => writeln!(out, "\nresult: PASS ({} checks)", self.lines.len()),
            n => writeln!(
                out,
                "\nresult: FAIL ({n} of {} checks failed)",
                self.lines.len()
            ),
        };
        out
    }
}

/// Compares `candidate` against `baseline` under `cfg` (see module docs
/// for the semantics).
pub fn compare(
    baseline: &BenchSnapshot,
    candidate: &BenchSnapshot,
    cfg: CompareConfig,
) -> CompareReport {
    let mut report = CompareReport::default();
    // Suite-keyed instances must tell the truth about themselves:
    // `random-n10-hard` recording `n_vars: 1` means some tool sliced the
    // key instead of parsing it (see [`crate::suite_key`]). Both sides are
    // checked — a poisoned baseline is as useless as a poisoned candidate.
    for (side, snap) in [("baseline", baseline), ("candidate", candidate)] {
        for inst in &snap.instances {
            let Some(key) = crate::suite_key::SuiteKey::parse(&inst.name) else {
                continue;
            };
            if key.n_vars != inst.n_vars {
                report.push(
                    &inst.name,
                    Verdict::Fail,
                    format!(
                        "{side} suite key declares n={} but the record says n_vars={}",
                        key.n_vars, inst.n_vars
                    ),
                );
            }
            if key.shape != inst.shape {
                report.push(
                    &inst.name,
                    Verdict::Fail,
                    format!(
                        "{side} suite key declares shape '{}' but the record says '{}'",
                        key.shape, inst.shape
                    ),
                );
            }
        }
    }
    for base_inst in &baseline.instances {
        let Some(cand_inst) = candidate.instance(&base_inst.name) else {
            report.push(
                &base_inst.name,
                Verdict::Fail,
                "instance missing from candidate snapshot".into(),
            );
            continue;
        };
        if (cand_inst.n_vars, cand_inst.cardinality, &cand_inst.shape)
            != (base_inst.n_vars, base_inst.cardinality, &base_inst.shape)
        {
            report.push(
                &base_inst.name,
                Verdict::Fail,
                format!(
                    "workload metadata drifted: baseline {}×n{} '{}', candidate {}×n{} '{}'",
                    base_inst.cardinality,
                    base_inst.n_vars,
                    base_inst.shape,
                    cand_inst.cardinality,
                    cand_inst.n_vars,
                    cand_inst.shape
                ),
            );
        }
        for base_algo in &base_inst.algos {
            let scope = format!("{}/{}", base_inst.name, base_algo.algo);
            let Some(cand_algo) = cand_inst.algos.iter().find(|a| a.algo == base_algo.algo) else {
                report.push(
                    &scope,
                    Verdict::Fail,
                    "algorithm missing from candidate snapshot".into(),
                );
                continue;
            };
            compare_algo(&mut report, &scope, base_algo, cand_algo, cfg);
        }
        for cand_algo in &cand_inst.algos {
            if !base_inst.algos.iter().any(|a| a.algo == cand_algo.algo) {
                report.push(
                    &format!("{}/{}", base_inst.name, cand_algo.algo),
                    Verdict::Fail,
                    "algorithm not present in baseline (re-snapshot the baseline)".into(),
                );
            }
        }
    }
    for cand_inst in &candidate.instances {
        if baseline.instance(&cand_inst.name).is_none() {
            report.push(
                &cand_inst.name,
                Verdict::Fail,
                "instance not present in baseline (re-snapshot the baseline)".into(),
            );
        }
    }
    compare_memory(&mut report, baseline, candidate);
    compare_cache(&mut report, baseline, candidate);
    compare_explain(&mut report, baseline, candidate);
    report
}

/// Gates the `memory` section: byte counts are deterministic
/// (`MemoryFootprint` contract), so every component must match exactly.
/// Records present on one side only fail, like missing algorithm records.
fn compare_memory(report: &mut CompareReport, baseline: &BenchSnapshot, candidate: &BenchSnapshot) {
    for base in &baseline.memory {
        let scope = format!("{}/memory", base.instance);
        let Some(cand) = candidate
            .memory
            .iter()
            .find(|m| m.instance == base.instance)
        else {
            report.push(
                &scope,
                Verdict::Fail,
                "memory record missing from candidate snapshot".into(),
            );
            continue;
        };
        if base == cand {
            report.push(
                &scope,
                Verdict::Ok,
                format!(
                    "memory identical ({} components, {} bytes)",
                    base.components.len(),
                    base.total_bytes
                ),
            );
        } else {
            let mut drift = Vec::new();
            for (name, base_v) in &base.components {
                match cand.components.iter().find(|(n, _)| n == name) {
                    Some((_, cand_v)) if cand_v == base_v => {}
                    Some((_, cand_v)) => drift.push(format!("{name} {base_v} -> {cand_v}")),
                    None => drift.push(format!("{name} {base_v} -> <absent>")),
                }
            }
            for (name, cand_v) in &cand.components {
                if !base.components.iter().any(|(n, _)| n == name) {
                    drift.push(format!("{name} <absent> -> {cand_v}"));
                }
            }
            if base.total_bytes != cand.total_bytes {
                drift.push(format!(
                    "total_bytes {} -> {}",
                    base.total_bytes, cand.total_bytes
                ));
            }
            report.push(
                &scope,
                Verdict::Fail,
                format!("memory drift: {}", drift.join(", ")),
            );
        }
    }
    for cand in &candidate.memory {
        if !baseline.memory.iter().any(|m| m.instance == cand.instance) {
            report.push(
                &format!("{}/memory", cand.instance),
                Verdict::Fail,
                "memory record not present in baseline (re-snapshot the baseline)".into(),
            );
        }
    }
}

/// Gates the `cache` section: hit/miss/invalidation counters are
/// deterministic work counters, compared with exact equality like every
/// other counter. Records present on one side only fail.
fn compare_cache(report: &mut CompareReport, baseline: &BenchSnapshot, candidate: &BenchSnapshot) {
    for base in &baseline.cache {
        let scope = format!("{}/{}/cache", base.instance, base.algo);
        let Some(cand) = candidate
            .cache
            .iter()
            .find(|c| c.instance == base.instance && c.algo == base.algo)
        else {
            report.push(
                &scope,
                Verdict::Fail,
                "cache record missing from candidate snapshot".into(),
            );
            continue;
        };
        if base == cand {
            report.push(
                &scope,
                Verdict::Ok,
                format!(
                    "cache counters identical ({} hits, {} misses)",
                    base.hits, base.misses
                ),
            );
        } else {
            let mut drift = Vec::new();
            for (name, base_v, cand_v) in [
                ("hits", base.hits, cand.hits),
                ("misses", base.misses, cand.misses),
                (
                    "invalidations_reassign",
                    base.invalidations_reassign,
                    cand.invalidations_reassign,
                ),
                (
                    "invalidations_penalty",
                    base.invalidations_penalty,
                    cand.invalidations_penalty,
                ),
                ("bytes", base.bytes, cand.bytes),
            ] {
                if base_v != cand_v {
                    drift.push(format!("{name} {base_v} -> {cand_v}"));
                }
            }
            report.push(
                &scope,
                Verdict::Fail,
                format!("cache counter drift: {}", drift.join(", ")),
            );
        }
    }
    for cand in &candidate.cache {
        if !baseline
            .cache
            .iter()
            .any(|c| c.instance == cand.instance && c.algo == cand.algo)
        {
            report.push(
                &format!("{}/{}/cache", cand.instance, cand.algo),
                Verdict::Fail,
                "cache record not present in baseline (re-snapshot the baseline)".into(),
            );
        }
    }
}

/// Gates the `explain` section: the snapshot stores the *estimate side*
/// only — selectivity models, tree quality, predicted accesses — which is
/// a pure function of the pinned instance, so every field must match
/// exactly (integers) or to floating-point round-off (derived floats).
/// Records present on one side only fail, like missing algorithm records.
fn compare_explain(
    report: &mut CompareReport,
    baseline: &BenchSnapshot,
    candidate: &BenchSnapshot,
) {
    for base in &baseline.explain {
        let scope = format!("{}/explain", base.instance);
        let Some(cand) = candidate
            .explain
            .iter()
            .find(|e| e.instance == base.instance)
        else {
            report.push(
                &scope,
                Verdict::Fail,
                "explain record missing from candidate snapshot".into(),
            );
            continue;
        };
        let drift = explain_drift(&base.report, &cand.report);
        if drift.is_empty() {
            report.push(
                &scope,
                Verdict::Ok,
                format!(
                    "explain identical ({} model, {} edges, {} vars)",
                    base.report.model,
                    base.report.edges.len(),
                    base.report.vars.len()
                ),
            );
        } else {
            report.push(
                &scope,
                Verdict::Fail,
                format!("explain drift: {}", drift.join(", ")),
            );
        }
    }
    for cand in &candidate.explain {
        if !baseline.explain.iter().any(|e| e.instance == cand.instance) {
            report.push(
                &format!("{}/explain", cand.instance),
                Verdict::Fail,
                "explain record not present in baseline (re-snapshot the baseline)".into(),
            );
        }
    }
}

/// Field-by-field drift between two explain reports: integers exact,
/// floats to [`FLOAT_EPS`]. Returns one message per drifted field.
fn explain_drift(base: &ExplainReport, cand: &ExplainReport) -> Vec<String> {
    let mut drift = Vec::new();
    let f = |drift: &mut Vec<String>, name: &str, b: f64, c: f64| {
        if (b - c).abs() > FLOAT_EPS {
            drift.push(format!("{name} {b} -> {c}"));
        }
    };
    let fo = |drift: &mut Vec<String>, name: &str, b: Option<f64>, c: Option<f64>| match (b, c) {
        (Some(b), Some(c)) if (b - c).abs() <= FLOAT_EPS => {}
        (None, None) => {}
        _ => drift.push(format!("{name} {b:?} -> {c:?}")),
    };
    let fv = |drift: &mut Vec<String>, name: &str, b: &[f64], c: &[f64]| {
        if b.len() != c.len() || b.iter().zip(c).any(|(x, y)| (x - y).abs() > FLOAT_EPS) {
            drift.push(format!("{name} {b:?} -> {c:?}"));
        }
    };
    if base.model != cand.model {
        drift.push(format!("model {:?} -> {:?}", base.model, cand.model));
    }
    f(
        &mut drift,
        "expected_solutions",
        base.expected_solutions,
        cand.expected_solutions,
    );
    if base.edges.len() != cand.edges.len() {
        drift.push(format!(
            "edge count {} -> {}",
            base.edges.len(),
            cand.edges.len()
        ));
    } else {
        for (b, c) in base.edges.iter().zip(&cand.edges) {
            let tag = format!("edge({},{})", b.a, b.b);
            if (b.a, b.b, &b.predicate) != (c.a, c.b, &c.predicate) {
                drift.push(format!(
                    "{tag} identity {:?} -> ({},{}) {:?}",
                    b.predicate, c.a, c.b, c.predicate
                ));
                continue;
            }
            f(
                &mut drift,
                &format!("{tag}.estimated_selectivity"),
                b.estimated_selectivity,
                c.estimated_selectivity,
            );
            fo(
                &mut drift,
                &format!("{tag}.observed_selectivity"),
                b.observed_selectivity,
                c.observed_selectivity,
            );
            if b.observed_pairs != c.observed_pairs {
                drift.push(format!(
                    "{tag}.observed_pairs {:?} -> {:?}",
                    b.observed_pairs, c.observed_pairs
                ));
            }
        }
    }
    if base.vars.len() != cand.vars.len() {
        drift.push(format!(
            "var count {} -> {}",
            base.vars.len(),
            cand.vars.len()
        ));
    } else {
        for (b, c) in base.vars.iter().zip(&cand.vars) {
            let tag = format!("var{}", b.var);
            if (b.var, b.cardinality, b.observed_accesses)
                != (c.var, c.cardinality, c.observed_accesses)
                || b.accesses_per_level != c.accesses_per_level
            {
                drift.push(format!("{tag} integer fields drifted"));
            }
            f(
                &mut drift,
                &format!("{tag}.avg_extent"),
                b.avg_extent,
                c.avg_extent,
            );
            f(
                &mut drift,
                &format!("{tag}.expected_window_hits"),
                b.expected_window_hits,
                c.expected_window_hits,
            );
            f(
                &mut drift,
                &format!("{tag}.predicted_accesses_per_query"),
                b.predicted_accesses_per_query,
                c.predicted_accesses_per_query,
            );
            if (b.tree.height, b.tree.nodes) != (c.tree.height, c.tree.nodes) {
                drift.push(format!(
                    "{tag}.tree {}l/{}n -> {}l/{}n",
                    b.tree.height, b.tree.nodes, c.tree.height, c.tree.nodes
                ));
            }
            f(
                &mut drift,
                &format!("{tag}.tree.avg_fill"),
                b.tree.avg_fill,
                c.tree.avg_fill,
            );
            fv(
                &mut drift,
                &format!("{tag}.tree.fill_per_level"),
                &b.tree.fill_per_level,
                &c.tree.fill_per_level,
            );
            fv(
                &mut drift,
                &format!("{tag}.tree.overlap_factor_per_level"),
                &b.tree.overlap_factor_per_level,
                &c.tree.overlap_factor_per_level,
            );
            fv(
                &mut drift,
                &format!("{tag}.tree.dead_space_per_level"),
                &b.tree.dead_space_per_level,
                &c.tree.dead_space_per_level,
            );
            fv(
                &mut drift,
                &format!("{tag}.tree.perimeter_per_level"),
                &b.tree.perimeter_per_level,
                &c.tree.perimeter_per_level,
            );
        }
    }
    if base.observed_node_accesses != cand.observed_node_accesses {
        drift.push(format!(
            "observed_node_accesses {:?} -> {:?}",
            base.observed_node_accesses, cand.observed_node_accesses
        ));
    }
    drift
}

fn compare_algo(
    report: &mut CompareReport,
    scope: &str,
    base: &AlgoRecord,
    cand: &AlgoRecord,
    cfg: CompareConfig,
) {
    // Deterministic counters: exact or fail.
    let mut counter_drift = Vec::new();
    for (name, base_v) in &base.counters {
        match cand.counter(name) {
            Some(cand_v) if cand_v == *base_v => {}
            Some(cand_v) => counter_drift.push(format!("{name} {base_v} -> {cand_v}")),
            None => counter_drift.push(format!("{name} {base_v} -> <absent>")),
        }
    }
    for (name, cand_v) in &cand.counters {
        if base.counter(name).is_none() {
            counter_drift.push(format!("{name} <absent> -> {cand_v}"));
        }
    }
    if counter_drift.is_empty() {
        report.push(
            scope,
            Verdict::Ok,
            format!("counters identical ({})", summarize_counters(base)),
        );
    } else {
        report.push(
            scope,
            Verdict::Fail,
            format!("deterministic counter drift: {}", counter_drift.join(", ")),
        );
    }

    // Derived deterministic floats: round-off tolerance only.
    for (name, base_v, cand_v) in [
        (
            "best_similarity",
            base.best_similarity,
            cand.best_similarity,
        ),
        ("auc_steps", base.auc_steps, cand.auc_steps),
    ] {
        if (base_v - cand_v).abs() > FLOAT_EPS {
            report.push(
                scope,
                Verdict::Fail,
                format!("{name} drifted: {base_v} -> {cand_v}"),
            );
        }
    }
    for (tau, base_v) in &base.steps_to {
        let cand_v = cand
            .steps_to
            .iter()
            .find(|(t, _)| t == tau)
            .map(|(_, v)| *v);
        if cand_v != Some(*base_v) {
            report.push(
                scope,
                Verdict::Fail,
                format!(
                    "steps_to[{tau}] drifted: {} -> {}",
                    fmt_opt(*base_v),
                    cand_v.map_or("<absent>".into(), fmt_opt)
                ),
            );
        }
    }

    // Measured wall clock: median within the tolerance band. The band is
    // relative-OR-absolute — a candidate fails only when it exceeds both
    // `baseline * (1 + tolerance)` and `baseline + slack`, so sub-slack
    // jitter on tiny workloads never trips the gate.
    let (b, c) = (base.wall_ms_median, cand.wall_ms_median);
    if b > 0.0 {
        let ratio = c / b;
        let msg = format!(
            "wall median {b:.2}ms -> {c:.2}ms ({:+.1}%, tolerance +{:.0}% or +{:.1}ms)",
            (ratio - 1.0) * 100.0,
            cfg.wall_tolerance * 100.0,
            cfg.wall_slack_ms
        );
        let verdict = if c > b.max(WALL_NOISE_FLOOR_MS) * (1.0 + cfg.wall_tolerance)
            && c > b + cfg.wall_slack_ms
        {
            Verdict::Fail
        } else {
            Verdict::Ok
        };
        report.push(scope, verdict, msg);
    } else {
        report.push(
            scope,
            Verdict::Ok,
            format!("wall median {b:.2}ms -> {c:.2}ms (baseline too small to gate)"),
        );
    }
}

fn fmt_opt(v: Option<u64>) -> String {
    v.map_or("never".into(), |x| x.to_string())
}

fn summarize_counters(algo: &AlgoRecord) -> String {
    let steps = algo.counter("steps").unwrap_or(0);
    let accesses = algo.counter("node_accesses").unwrap_or(0);
    format!("{steps} steps, {accesses} node accesses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::AnytimeCurve;
    use crate::snapshot::{InstanceRecord, TAUS};

    fn record(algo: &str, steps: u64, wall_ms: f64) -> AlgoRecord {
        let mut curve = AnytimeCurve::new();
        curve.record(0, 0.0, 0.5);
        curve.record(steps / 2, wall_ms / 2.0, 1.0);
        curve.set_totals(steps, steps * 3, wall_ms);
        AlgoRecord::from_curve(
            algo,
            vec![("steps".into(), steps), ("node_accesses".into(), steps * 3)],
            1.0,
            &curve,
            vec![wall_ms],
            vec![],
        )
    }

    fn snapshot(label: &str, algos: Vec<AlgoRecord>) -> BenchSnapshot {
        BenchSnapshot {
            label: label.into(),
            reps: 1,
            instances: vec![InstanceRecord {
                name: "chain-4".into(),
                shape: "chain".into(),
                n_vars: 4,
                cardinality: 100,
                seed: 1,
                algos,
            }],
            memory: vec![],
            cache: vec![],
            explain: vec![],
        }
    }

    #[test]
    fn identical_snapshots_pass() {
        let a = snapshot("a", vec![record("ILS", 100, 10.0)]);
        let b = snapshot("b", vec![record("ILS", 100, 10.0)]);
        let report = compare(&a, &b, CompareConfig::default());
        assert!(report.passed(), "{}", report.render());
        assert!(report.render().contains("result: PASS"));
    }

    #[test]
    fn counter_drift_fails() {
        let a = snapshot("a", vec![record("ILS", 100, 10.0)]);
        let b = snapshot("b", vec![record("ILS", 101, 10.0)]);
        let report = compare(&a, &b, CompareConfig::default());
        assert!(!report.passed());
        assert!(
            report.render().contains("counter drift"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn wall_slowdown_within_band_passes_beyond_fails() {
        // Baselines well above the absolute slack, so the relative band
        // is what decides.
        let a = snapshot("a", vec![record("ILS", 100, 100.0)]);
        let mut fast = record("ILS", 100, 100.0);
        fast.wall_ms_median = 120.0; // +20% < +25%
        let report = compare(&a, &snapshot("b", vec![fast]), CompareConfig::default());
        assert!(report.passed(), "{}", report.render());

        let mut slow = record("ILS", 100, 100.0);
        slow.wall_ms_median = 130.0; // +30% > +25%, +30ms > slack
        let report = compare(&a, &snapshot("b", vec![slow]), CompareConfig::default());
        assert!(!report.passed());
        assert!(
            report.render().contains("wall median"),
            "{}",
            report.render()
        );

        // A wider band admits it.
        let mut slow = record("ILS", 100, 100.0);
        slow.wall_ms_median = 130.0;
        let report = compare(
            &a,
            &snapshot("b", vec![slow]),
            CompareConfig {
                wall_tolerance: 0.5,
                ..CompareConfig::default()
            },
        );
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn absolute_slack_floors_the_relative_band_on_tiny_workloads() {
        // +75% relative, but only +0.03ms absolute: inside the slack.
        let a = snapshot("a", vec![record("ILS", 100, 0.04)]);
        let mut jittery = record("ILS", 100, 0.04);
        jittery.wall_ms_median = 0.07;
        let report = compare(&a, &snapshot("b", vec![jittery]), CompareConfig::default());
        assert!(report.passed(), "{}", report.render());

        // The slack is additive, not a substitute: past both bounds fails.
        let mut slow = record("ILS", 100, 0.04);
        slow.wall_ms_median = 8.0;
        let report = compare(&a, &snapshot("b", vec![slow]), CompareConfig::default());
        assert!(!report.passed(), "{}", report.render());

        // Zero slack restores the purely relative gate — for medians
        // above the noise floor.
        let a = snapshot("a", vec![record("ILS", 100, 4.0)]);
        let mut slow = record("ILS", 100, 4.0);
        slow.wall_ms_median = 7.0; // +75% > +25%, above the 1ms floor
        let report = compare(
            &a,
            &snapshot("b", vec![slow]),
            CompareConfig {
                wall_slack_ms: 0.0,
                ..CompareConfig::default()
            },
        );
        assert!(!report.passed(), "{}", report.render());
    }

    #[test]
    fn sub_millisecond_medians_never_flake_the_relative_gate() {
        // Relative-band-only config (the large-tier CI job): an 87%
        // "regression" on a 0.02ms median is scheduler jitter, not signal
        // — the noise floor absorbs it.
        let relative_only = CompareConfig {
            wall_tolerance: 0.6,
            wall_slack_ms: 0.0,
        };
        let a = snapshot("a", vec![record("ILS", 100, 0.02)]);
        let mut jittery = record("ILS", 100, 0.02);
        jittery.wall_ms_median = 0.04; // +100%, far below the floor
        let report = compare(&a, &snapshot("b", vec![jittery]), relative_only);
        assert!(report.passed(), "{}", report.render());

        // A genuine blow-up from a tiny baseline still fails: the floor
        // caps the denominator, it does not waive the gate.
        let mut blown = record("ILS", 100, 0.02);
        blown.wall_ms_median = 5.0; // > 1ms·1.6 and > baseline + 0
        let report = compare(&a, &snapshot("b", vec![blown]), relative_only);
        assert!(!report.passed(), "{}", report.render());
    }

    #[test]
    fn speedups_always_pass_the_wall_gate() {
        let a = snapshot("a", vec![record("ILS", 100, 10.0)]);
        let mut fast = record("ILS", 100, 10.0);
        fast.wall_ms_median = 2.0;
        let report = compare(&a, &snapshot("b", vec![fast]), CompareConfig::default());
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn missing_and_extra_records_fail() {
        let a = snapshot("a", vec![record("ILS", 100, 10.0), record("GILS", 50, 5.0)]);
        let b = snapshot("b", vec![record("ILS", 100, 10.0), record("SEA", 70, 7.0)]);
        let report = compare(&a, &b, CompareConfig::default());
        let rendered = report.render();
        assert_eq!(report.failures(), 2, "{rendered}");
        assert!(rendered.contains("GILS"), "{rendered}");
        assert!(rendered.contains("SEA"), "{rendered}");

        let empty = BenchSnapshot {
            label: "e".into(),
            reps: 1,
            instances: vec![],
            memory: vec![],
            cache: vec![],
            explain: vec![],
        };
        let report = compare(&a, &empty, CompareConfig::default());
        assert!(!report.passed());
    }

    #[test]
    fn derived_float_and_threshold_drift_fail() {
        let a = snapshot("a", vec![record("ILS", 100, 10.0)]);
        let mut drifted = record("ILS", 100, 10.0);
        drifted.auc_steps += 0.01;
        let report = compare(&a, &snapshot("b", vec![drifted]), CompareConfig::default());
        assert!(!report.passed());
        assert!(report.render().contains("auc_steps"), "{}", report.render());

        let mut drifted = record("ILS", 100, 10.0);
        drifted.steps_to = TAUS.iter().map(|&t| (format!("{t:.2}"), None)).collect();
        let report = compare(&a, &snapshot("b", vec![drifted]), CompareConfig::default());
        assert!(!report.passed());
        assert!(report.render().contains("steps_to"), "{}", report.render());
    }

    fn keyed_snapshot(label: &str, name: &str, n_vars: u64, shape: &str) -> BenchSnapshot {
        BenchSnapshot {
            label: label.into(),
            reps: 1,
            instances: vec![InstanceRecord {
                name: name.into(),
                shape: shape.into(),
                n_vars,
                cardinality: 10_000,
                seed: 1,
                algos: vec![record("ILS", 100, 10.0)],
            }],
            memory: vec![],
            cache: vec![],
            explain: vec![],
        }
    }

    #[test]
    fn multi_digit_suite_keys_validate_against_record_metadata() {
        // Consistent n=10 key: passes — a parser slicing one digit would
        // have read n=1 and failed this.
        let a = keyed_snapshot("a", "random-n10-hard", 10, "random");
        let b = keyed_snapshot("b", "random-n10-hard", 10, "random");
        assert!(compare(&a, &b, CompareConfig::default()).passed());

        // A record whose metadata contradicts its key fails the gate.
        let bad = keyed_snapshot("b", "random-n10-hard", 1, "random");
        let report = compare(&a, &bad, CompareConfig::default());
        assert!(!report.passed());
        assert!(
            report.render().contains("suite key declares n=10"),
            "{}",
            report.render()
        );

        let bad = keyed_snapshot("b", "random-n10-hard", 10, "chain");
        let report = compare(&a, &bad, CompareConfig::default());
        assert!(!report.passed());
        assert!(
            report.render().contains("suite key declares shape"),
            "{}",
            report.render()
        );
    }

    fn with_sections(mut snap: BenchSnapshot) -> BenchSnapshot {
        snap.memory = vec![crate::snapshot::MemoryRecord {
            instance: "chain-4".into(),
            components: vec![("rtree.var000".into(), 4096)],
            total_bytes: 4096,
        }];
        snap.cache = vec![crate::snapshot::CacheRecord {
            instance: "chain-4".into(),
            algo: "ILS".into(),
            hits: 10,
            misses: 20,
            invalidations_reassign: 3,
            invalidations_penalty: 0,
            bytes: 512,
        }];
        snap.explain = vec![crate::snapshot::ExplainRecord {
            instance: "chain-4".into(),
            report: crate::explain::tests::sample_report(false),
        }];
        snap
    }

    #[test]
    fn identical_memory_and_cache_sections_pass() {
        let a = with_sections(snapshot("a", vec![record("ILS", 100, 10.0)]));
        let b = with_sections(snapshot("b", vec![record("ILS", 100, 10.0)]));
        let report = compare(&a, &b, CompareConfig::default());
        assert!(report.passed(), "{}", report.render());
        let rendered = report.render();
        assert!(rendered.contains("memory identical"), "{rendered}");
        assert!(rendered.contains("cache counters identical"), "{rendered}");
        assert!(rendered.contains("explain identical"), "{rendered}");
    }

    #[test]
    fn explain_estimate_drift_fails_exactly() {
        let a = with_sections(snapshot("a", vec![record("ILS", 100, 10.0)]));
        let mut b = with_sections(snapshot("b", vec![record("ILS", 100, 10.0)]));
        b.explain[0].report.edges[0].estimated_selectivity += 0.001;
        let report = compare(&a, &b, CompareConfig::default());
        assert!(!report.passed());
        assert!(
            report
                .render()
                .contains("explain drift: edge(0,1).estimated_selectivity"),
            "{}",
            report.render()
        );

        // Round-off-scale float differences stay inside the gate.
        let mut b = with_sections(snapshot("b", vec![record("ILS", 100, 10.0)]));
        b.explain[0].report.vars[0].avg_extent += 1e-12;
        let report = compare(&a, &b, CompareConfig::default());
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn explain_tree_quality_drift_fails() {
        let a = with_sections(snapshot("a", vec![record("ILS", 100, 10.0)]));
        let mut b = with_sections(snapshot("b", vec![record("ILS", 100, 10.0)]));
        b.explain[0].report.vars[1].tree.overlap_factor_per_level[0] += 0.1;
        let report = compare(&a, &b, CompareConfig::default());
        assert!(!report.passed());
        assert!(
            report
                .render()
                .contains("var1.tree.overlap_factor_per_level"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn memory_byte_drift_fails_exactly() {
        let a = with_sections(snapshot("a", vec![record("ILS", 100, 10.0)]));
        let mut b = with_sections(snapshot("b", vec![record("ILS", 100, 10.0)]));
        b.memory[0].components[0].1 += 1;
        b.memory[0].total_bytes += 1;
        let report = compare(&a, &b, CompareConfig::default());
        assert!(!report.passed());
        let rendered = report.render();
        assert!(
            rendered.contains("memory drift") && rendered.contains("rtree.var000 4096 -> 4097"),
            "{rendered}"
        );
    }

    #[test]
    fn cache_counter_drift_fails_exactly() {
        let a = with_sections(snapshot("a", vec![record("ILS", 100, 10.0)]));
        let mut b = with_sections(snapshot("b", vec![record("ILS", 100, 10.0)]));
        b.cache[0].hits += 1;
        let report = compare(&a, &b, CompareConfig::default());
        assert!(!report.passed());
        assert!(
            report
                .render()
                .contains("cache counter drift: hits 10 -> 11"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn missing_memory_or_cache_section_fails_both_ways() {
        let with = with_sections(snapshot("a", vec![record("ILS", 100, 10.0)]));
        let without = snapshot("b", vec![record("ILS", 100, 10.0)]);
        // Baseline has the sections, candidate lost them: regression.
        let report = compare(&with, &without, CompareConfig::default());
        assert_eq!(report.failures(), 3, "{}", report.render());
        assert!(report.render().contains("missing from candidate"));
        // Candidate grew sections the baseline lacks: re-snapshot.
        let report = compare(&without, &with, CompareConfig::default());
        assert_eq!(report.failures(), 3, "{}", report.render());
        assert!(report.render().contains("not present in baseline"));
    }

    #[test]
    fn workload_metadata_drift_between_snapshots_fails() {
        // Same (unkeyed) instance name, different workload parameters:
        // the counters are not comparable, so the gate must fail even
        // though each snapshot is self-consistent.
        let a = snapshot("a", vec![record("ILS", 100, 10.0)]);
        let mut b = snapshot("b", vec![record("ILS", 100, 10.0)]);
        b.instances[0].n_vars = 5;
        let report = compare(&a, &b, CompareConfig::default());
        assert!(!report.passed());
        assert!(
            report.render().contains("workload metadata drifted"),
            "{}",
            report.render()
        );
    }
}
