//! `mwsj-schema-check`: validates JSONL run-event files against the
//! schema documented in `DESIGN.md` ("Observability").
//!
//! Usage: `mwsj-schema-check <file.jsonl>...`
//!
//! Exits non-zero if any file fails to parse or violates the schema; CI
//! uses this to gate the metrics artifacts produced by `mwsj solve
//! --metrics-out`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: mwsj-schema-check <file.jsonl>...");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &paths {
        match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                ok = false;
            }
            Ok(text) => match mwsj_obs::schema::validate_jsonl(&text) {
                Ok(events) => println!("{path}: OK ({events} events)"),
                Err((line, err)) => {
                    eprintln!("{path}:{line}: {err}");
                    ok = false;
                }
            },
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
