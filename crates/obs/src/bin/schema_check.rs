//! `mwsj-schema-check`: validates observability artifacts against their
//! schemas documented in `DESIGN.md`.
//!
//! Usage: `mwsj-schema-check <file>...`
//!
//! Each file is auto-detected: a single JSON document whose top-level
//! `format` is `"mwsj-bench-snapshot"` is validated as a `BENCH_*.json`
//! benchmark snapshot; anything else is validated as a JSONL run-event
//! stream. Exits non-zero if any file fails to parse or violates its
//! schema; CI uses this to gate both the metrics artifacts produced by
//! `mwsj solve --metrics-out` and the snapshots produced by `mwsj bench
//! snapshot`.

use mwsj_obs::BenchSnapshot;
use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: mwsj-schema-check <file>...");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &paths {
        match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                ok = false;
            }
            Ok(text) if BenchSnapshot::sniff(&text) => match BenchSnapshot::parse(&text) {
                Ok(snap) => println!(
                    "{path}: OK (bench snapshot {:?}, {} instances, {} algo records)",
                    snap.label,
                    snap.instances.len(),
                    snap.algo_records()
                ),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    ok = false;
                }
            },
            Ok(text) => match mwsj_obs::schema::validate_jsonl(&text) {
                Ok(events) => println!("{path}: OK ({events} events)"),
                Err((line, err)) => {
                    eprintln!("{path}:{line}: {err}");
                    ok = false;
                }
            },
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
