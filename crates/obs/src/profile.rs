//! Phase-profile export as folded stacks.
//!
//! [`PhaseTimer`](crate::PhaseTimer) aggregates *inclusive* wall time per phase path
//! (`solve > restart[3] > find_best_value`). Flamegraph tooling instead
//! consumes the **folded stack** format — one line per stack holding its
//! *self* value:
//!
//! ```text
//! solve;restart[3];find_best_value 1234
//! ```
//!
//! [`to_folded`] converts a phase snapshot into that format, computing
//! self time as a phase's inclusive wall minus its direct children's
//! (children are fully nested inside their parent's spans, so the
//! difference is non-negative up to clock granularity; it is clamped at
//! zero). Values are **nanoseconds**, so the per-root-phase sums are
//! exact: for every root phase, the folded self values of its subtree sum
//! back to the root's recorded inclusive total. [`parse_folded`] is the
//! inverse used by tests and the snapshot round-trip check.

use crate::timer::PhaseSnapshot;
use std::collections::BTreeMap;

/// The separator of nested span names inside a [`PhaseSnapshot`] path.
const PATH_SEP: &str = " > ";

/// Converts hierarchical phase aggregates into folded-stack lines
/// (`a;b;c <self-nanos>`), one per phase path, sorted by path. Phases with
/// zero self time are kept so the stack structure survives the round
/// trip.
pub fn to_folded(phases: &[PhaseSnapshot]) -> String {
    let inclusive: BTreeMap<&str, u128> = phases
        .iter()
        .map(|p| (p.path.as_str(), p.wall.as_nanos()))
        .collect();
    let mut out = String::new();
    for (path, nanos) in &inclusive {
        let children_sum: u128 = inclusive
            .iter()
            .filter(|(child, _)| is_direct_child(path, child))
            .map(|(_, n)| *n)
            .sum();
        let self_nanos = nanos.saturating_sub(children_sum);
        out.push_str(&path.replace(PATH_SEP, ";"));
        out.push(' ');
        out.push_str(&self_nanos.to_string());
        out.push('\n');
    }
    out
}

/// `true` when `child` is a direct child path of `parent`
/// (`parent > name` with no deeper nesting).
fn is_direct_child(parent: &str, child: &str) -> bool {
    child
        .strip_prefix(parent)
        .and_then(|rest| rest.strip_prefix(PATH_SEP))
        .is_some_and(|name| !name.contains(PATH_SEP))
}

/// Parses folded-stack lines back into `(phase path, self nanoseconds)`
/// pairs (the `;` separators are restored to the timer's `" > "` form).
/// Empty lines are ignored; a line without a trailing integer value is an
/// error.
pub fn parse_folded(text: &str) -> Result<Vec<(String, u64)>, String> {
    let mut stacks = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (stack, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: missing folded-stack value", i + 1))?;
        let value: u64 = value
            .parse()
            .map_err(|_| format!("line {}: '{value}' is not a sample value", i + 1))?;
        if stack.is_empty() {
            return Err(format!("line {}: empty stack", i + 1));
        }
        stacks.push((stack.replace(';', PATH_SEP), value));
    }
    Ok(stacks)
}

/// Sums parsed folded stacks per **root phase** (first stack frame). For
/// output of [`to_folded`] this reconstructs each root's inclusive
/// wall-clock total in nanoseconds.
pub fn folded_root_totals(stacks: &[(String, u64)]) -> BTreeMap<String, u64> {
    let mut totals = BTreeMap::new();
    for (path, value) in stacks {
        let root = path.split(PATH_SEP).next().unwrap_or(path).to_string();
        *totals.entry(root).or_insert(0) += value;
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timer::PhaseTimer;
    use std::time::Duration;

    fn snap(path: &str, millis: u64) -> PhaseSnapshot {
        PhaseSnapshot {
            path: path.into(),
            calls: 1,
            steps: 0,
            wall: Duration::from_millis(millis),
        }
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        let phases = vec![
            snap("solve", 100),
            snap("solve > restart[0]", 30),
            snap("solve > restart[1]", 50),
            snap("solve > restart[1] > fbv", 45),
        ];
        let folded = to_folded(&phases);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec![
                "solve 20000000",                // 100 − (30 + 50)
                "solve;restart[0] 30000000",     // leaf
                "solve;restart[1] 5000000",      // 50 − 45
                "solve;restart[1];fbv 45000000", // leaf
            ]
        );
    }

    #[test]
    fn over_accounted_children_clamp_to_zero() {
        let phases = vec![snap("solve", 10), snap("solve > fbv", 12)];
        let folded = to_folded(&phases);
        assert!(folded.contains("solve 0\n"), "{folded}");
    }

    #[test]
    fn round_trips_and_sums_to_root_totals() {
        let phases = vec![
            snap("solve", 100),
            snap("solve > restart[0]", 30),
            snap("solve > restart[0] > fbv", 29),
            snap("solve > restart[1]", 60),
            snap("join", 7),
        ];
        let stacks = parse_folded(&to_folded(&phases)).unwrap();
        let totals = folded_root_totals(&stacks);
        assert_eq!(
            totals["solve"],
            Duration::from_millis(100).as_nanos() as u64
        );
        assert_eq!(totals["join"], Duration::from_millis(7).as_nanos() as u64);
    }

    #[test]
    fn real_timer_snapshot_round_trips_exactly() {
        let timer = PhaseTimer::new();
        {
            let _solve = timer.span("solve");
            for i in 0..3 {
                let _r = timer.span(&format!("restart[{i}]"));
                let _f = timer.span("find_best_value");
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        let phases = timer.snapshot();
        let root_inclusive = phases
            .iter()
            .find(|p| p.path == "solve")
            .unwrap()
            .wall
            .as_nanos() as u64;
        let stacks = parse_folded(&to_folded(&phases)).unwrap();
        assert_eq!(folded_root_totals(&stacks)["solve"], root_inclusive);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_folded("solve").is_err());
        assert!(parse_folded("solve x").is_err());
        assert!(parse_folded(" 12").is_err());
        assert_eq!(parse_folded("\n\n").unwrap(), vec![]);
        assert_eq!(
            parse_folded("a;b 5\n").unwrap(),
            vec![("a > b".to_string(), 5)]
        );
    }

    #[test]
    fn sibling_name_prefixes_are_not_children() {
        // "solve > restart[1]" must not be counted as a child of
        // "solve > restart[1] > x"'s sibling "solve > restart[10]".
        assert!(is_direct_child("solve", "solve > restart[1]"));
        assert!(!is_direct_child("solve", "solve > restart[1] > fbv"));
        assert!(!is_direct_child(
            "solve > restart[1]",
            "solve > restart[10]"
        ));
        assert!(!is_direct_child("solve", "solver > x"));
    }
}
