//! Structured parsing of bench-suite instance keys.
//!
//! Suite cases are named `<shape>-n<vars>-<qualifier>`, e.g.
//! `chain-n4-hard`, `random-n10-hard` or `chain-n6-100k`. Tools that
//! group, sort or validate snapshot records must go through this parser
//! instead of slicing the string: ad-hoc `name[7..8]`-style extraction
//! silently misreads multi-digit variable counts (`n10` parses as `n1`)
//! the moment the large tier enters the picture.

use std::fmt;

/// A parsed suite instance key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteKey {
    /// Query shape segment (`"chain"`, `"clique"`, `"random"`, …).
    pub shape: String,
    /// Variable count from the `n<digits>` segment — multi-digit safe.
    pub n_vars: u64,
    /// Trailing qualifier (`"hard"`, `"easy"`, `"100k"`, …); may contain
    /// further dashes.
    pub qualifier: String,
}

impl SuiteKey {
    /// Parses `<shape>-n<vars>-<qualifier>`. Returns `None` for names
    /// that do not follow the suite convention (the caller decides
    /// whether that is an error or merely an unkeyed instance).
    pub fn parse(name: &str) -> Option<SuiteKey> {
        let (shape, rest) = name.split_once('-')?;
        let (nvars, qualifier) = rest.split_once('-')?;
        let digits = nvars.strip_prefix('n')?;
        if shape.is_empty() || qualifier.is_empty() || digits.is_empty() {
            return None;
        }
        if !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        Some(SuiteKey {
            shape: shape.to_string(),
            n_vars: digits.parse().ok()?,
            qualifier: qualifier.to_string(),
        })
    }
}

impl fmt::Display for SuiteKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-n{}-{}", self.shape, self.n_vars, self.qualifier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_digit_keys() {
        let k = SuiteKey::parse("chain-n4-hard").unwrap();
        assert_eq!(k.shape, "chain");
        assert_eq!(k.n_vars, 4);
        assert_eq!(k.qualifier, "hard");
    }

    #[test]
    fn parses_multi_digit_variable_counts() {
        // The large tier's n ≥ 10 keys are the regression this module
        // exists for.
        let k = SuiteKey::parse("random-n10-hard").unwrap();
        assert_eq!(k.n_vars, 10);
        assert_eq!(k.shape, "random");
        let k = SuiteKey::parse("chain-n128-easy").unwrap();
        assert_eq!(k.n_vars, 128);
    }

    #[test]
    fn qualifier_keeps_embedded_dashes_and_digits() {
        let k = SuiteKey::parse("chain-n6-100k").unwrap();
        assert_eq!(k.n_vars, 6);
        assert_eq!(k.qualifier, "100k");
        let k = SuiteKey::parse("cycle-n8-hard-rerun").unwrap();
        assert_eq!(k.qualifier, "hard-rerun");
    }

    #[test]
    fn rejects_malformed_keys() {
        for bad in [
            "",
            "chain",
            "chain-n4",
            "chain-4-hard",
            "chain-nx-hard",
            "chain-n-hard",
            "chain-n4x-hard",
            "-n4-hard",
            "chain-n4-",
        ] {
            assert!(SuiteKey::parse(bad).is_none(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn display_round_trips() {
        for name in ["chain-n4-hard", "random-n10-hard", "chain-n6-100k"] {
            assert_eq!(SuiteKey::parse(name).unwrap().to_string(), name);
        }
    }
}
