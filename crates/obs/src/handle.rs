//! [`ObsHandle`]: the bundle of registry, timer and event sink that the
//! search layer threads through its contexts.

use crate::events::{EventSink, RunEvent};
use crate::registry::MetricsRegistry;
use crate::timer::PhaseTimer;
use std::sync::Arc;

/// One observability attachment point: a metrics registry, a phase timer,
/// an optional event sink and (inside a portfolio) the restart index.
///
/// The default handle is fully disabled, so instrumented code can hold one
/// unconditionally. Cloning shares the registry/timer storage and the
/// sink.
#[derive(Clone, Default)]
pub struct ObsHandle {
    /// The metrics registry (possibly disabled).
    pub metrics: MetricsRegistry,
    /// The phase timer (possibly disabled).
    pub timer: PhaseTimer,
    sink: Option<Arc<dyn EventSink>>,
    restart: Option<u64>,
}

impl std::fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsHandle")
            .field("metrics", &self.metrics.is_enabled())
            .field("timer", &self.timer.is_enabled())
            .field("sink", &self.sink.is_some())
            .field("restart", &self.restart)
            .finish()
    }
}

impl ObsHandle {
    /// A fully disabled handle (the default).
    pub fn disabled() -> Self {
        ObsHandle::default()
    }

    /// A handle with a fresh enabled registry and timer and no sink.
    pub fn enabled() -> Self {
        ObsHandle {
            metrics: MetricsRegistry::new(),
            timer: PhaseTimer::new(),
            sink: None,
            restart: None,
        }
    }

    /// A handle with only the phase timer enabled — for callers that want
    /// a phase profile without paying for metrics or an event stream
    /// (e.g. `mwsj solve --profile-out` alone).
    pub fn timer_only() -> Self {
        ObsHandle {
            metrics: MetricsRegistry::disabled(),
            timer: PhaseTimer::new(),
            sink: None,
            restart: None,
        }
    }

    /// Attaches an event sink.
    pub fn with_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Derives the handle for portfolio restart `index`: a **fresh**
    /// registry and timer (mirroring this handle's enabledness, so each
    /// restart's metrics can be reduced deterministically in seed order)
    /// sharing the same event sink.
    pub fn for_restart(&self, index: u64) -> Self {
        ObsHandle {
            metrics: if self.metrics.is_enabled() {
                MetricsRegistry::new()
            } else {
                MetricsRegistry::disabled()
            },
            timer: if self.timer.is_enabled() {
                PhaseTimer::new()
            } else {
                PhaseTimer::disabled()
            },
            sink: self.sink.clone(),
            restart: Some(index),
        }
    }

    /// The restart index this handle is scoped to, if any.
    pub fn restart(&self) -> Option<u64> {
        self.restart
    }

    /// Emits an event to the sink, if one is attached.
    #[inline]
    pub fn emit(&self, event: RunEvent) {
        if let Some(sink) = &self.sink {
            sink.emit(&event);
        }
    }

    /// `true` when an event sink is attached. Instrumented code can use
    /// this to skip computing event fields (timestamps in particular) when
    /// nobody is listening.
    pub fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Asks the attached sink (if any) to record its own resident bytes
    /// into `report` — e.g. the flight recorder's ring. See
    /// [`EventSink::fill_resource_report`].
    pub fn fill_sink_resources(&self, report: &mut crate::resource::ResourceReport) {
        if let Some(sink) = &self.sink {
            sink.fill_resource_report(report);
        }
    }

    /// `true` when any of the three components is active.
    pub fn is_enabled(&self) -> bool {
        self.metrics.is_enabled() || self.timer.is_enabled() || self.sink.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::VecSink;

    #[test]
    fn default_handle_is_disabled() {
        let obs = ObsHandle::default();
        assert!(!obs.is_enabled());
        assert!(obs.restart().is_none());
        // Emitting without a sink is a no-op, not a panic.
        obs.emit(RunEvent::TracePoint {
            step: 0,
            similarity: 0.0,
            elapsed_secs: 0.0,
        });
    }

    #[test]
    fn for_restart_isolates_metrics_but_shares_sink() {
        let sink = Arc::new(VecSink::new());
        let obs = ObsHandle::enabled().with_sink(sink.clone());
        let child = obs.for_restart(3);
        assert_eq!(child.restart(), Some(3));
        child.metrics.counter("c").inc();
        assert_eq!(obs.metrics.snapshot().counter("c"), None);
        child.emit(RunEvent::RestartStart {
            restart: 3,
            seed: 9,
        });
        assert_eq!(sink.events().len(), 1);
    }

    #[test]
    fn for_restart_of_disabled_handle_stays_disabled() {
        let child = ObsHandle::disabled().for_restart(0);
        assert!(!child.metrics.is_enabled());
        assert!(!child.timer.is_enabled());
        assert_eq!(child.restart(), Some(0));
    }
}
