//! Validation of JSONL run-event files against the documented schema.
//!
//! The authoritative prose schema lives in `DESIGN.md` ("Observability");
//! this module is its executable form, used by tests, CI (via the
//! `mwsj-schema-check` binary) and `mwsj report`. Validation is
//! deliberately *open*: unknown extra fields are allowed (forward
//! compatibility), but the `event` discriminator must be known and every
//! required field must be present with the right JSON type.

use crate::json::{Json, JsonError};
use std::fmt;

/// Expected JSON type of a schema field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FieldType {
    U64,
    F64,
    Str,
    Bool,
    Obj,
    Arr,
}

impl FieldType {
    fn check(self, value: &Json) -> bool {
        match self {
            FieldType::U64 => value.as_u64().is_some(),
            FieldType::F64 => value.as_f64().is_some(),
            FieldType::Str => value.as_str().is_some(),
            FieldType::Bool => value.as_bool().is_some(),
            FieldType::Obj => value.as_object().is_some(),
            FieldType::Arr => value.as_array().is_some(),
        }
    }

    fn name(self) -> &'static str {
        match self {
            FieldType::U64 => "non-negative integer",
            FieldType::F64 => "number",
            FieldType::Str => "string",
            FieldType::Bool => "boolean",
            FieldType::Obj => "object",
            FieldType::Arr => "array",
        }
    }
}

/// Required fields per event kind (optional fields are not listed; they
/// are type-checked only when present via `OPTIONAL`).
const REQUIRED: &[(&str, &[(&str, FieldType)])] = &[
    (
        "run_start",
        &[
            ("algo", FieldType::Str),
            ("n_vars", FieldType::U64),
            ("edges", FieldType::U64),
            ("restarts", FieldType::U64),
            ("threads", FieldType::U64),
            ("seed", FieldType::U64),
        ],
    ),
    (
        "restart_start",
        &[("restart", FieldType::U64), ("seed", FieldType::U64)],
    ),
    (
        "improvement",
        &[
            ("step", FieldType::U64),
            ("violations", FieldType::U64),
            ("similarity", FieldType::F64),
            ("elapsed_secs", FieldType::F64),
        ],
    ),
    (
        "restart_end",
        &[
            ("restart", FieldType::U64),
            ("best_violations", FieldType::U64),
            ("steps", FieldType::U64),
            ("elapsed_secs", FieldType::F64),
        ],
    ),
    (
        "budget_exhausted",
        &[("steps", FieldType::U64), ("elapsed_secs", FieldType::F64)],
    ),
    (
        "cutoff_fired",
        &[("steps", FieldType::U64), ("elapsed_secs", FieldType::F64)],
    ),
    (
        "trace_point",
        &[
            ("step", FieldType::U64),
            ("similarity", FieldType::F64),
            ("elapsed_secs", FieldType::F64),
        ],
    ),
    (
        "progress",
        &[
            ("step", FieldType::U64),
            ("steps_per_sec", FieldType::F64),
            ("elapsed_secs", FieldType::F64),
            ("node_accesses", FieldType::U64),
            ("cache_hits", FieldType::U64),
            ("cache_misses", FieldType::U64),
            ("resident_bytes", FieldType::U64),
        ],
    ),
    (
        "stall_detected",
        &[
            ("step", FieldType::U64),
            ("steps_since_improvement", FieldType::U64),
            ("secs_since_improvement", FieldType::F64),
            ("elapsed_secs", FieldType::F64),
        ],
    ),
    (
        "stall_aborted",
        &[("steps", FieldType::U64), ("elapsed_secs", FieldType::F64)],
    ),
    (
        "stagnation_reseed",
        &[
            ("step", FieldType::U64),
            ("rounds", FieldType::U64),
            ("elapsed_secs", FieldType::F64),
        ],
    ),
    (
        "metrics",
        &[
            ("counters", FieldType::Obj),
            ("gauges", FieldType::Obj),
            ("histograms", FieldType::Obj),
        ],
    ),
    ("phases", &[("phases", FieldType::Arr)]),
    (
        "explain_report",
        &[
            ("model", FieldType::Str),
            ("expected_solutions", FieldType::F64),
            ("edges", FieldType::Arr),
            ("vars", FieldType::Arr),
        ],
    ),
    (
        "resource_report",
        &[
            ("total_bytes", FieldType::U64),
            ("components", FieldType::Obj),
        ],
    ),
    (
        "run_end",
        &[
            ("best_violations", FieldType::U64),
            ("best_similarity", FieldType::F64),
            ("steps", FieldType::U64),
            ("node_accesses", FieldType::U64),
            ("local_maxima", FieldType::U64),
            ("improvements", FieldType::U64),
            ("restarts", FieldType::U64),
            ("elapsed_secs", FieldType::F64),
            ("proven_optimal", FieldType::Bool),
        ],
    ),
];

/// Optional fields, type-checked only when present.
const OPTIONAL: &[(&str, &[(&str, FieldType)])] = &[
    (
        "run_start",
        &[
            ("budget_steps", FieldType::U64),
            ("budget_secs", FieldType::F64),
        ],
    ),
    ("improvement", &[("restart", FieldType::U64)]),
    ("budget_exhausted", &[("restart", FieldType::U64)]),
    ("cutoff_fired", &[("restart", FieldType::U64)]),
    (
        "progress",
        &[
            ("restart", FieldType::U64),
            ("best_violations", FieldType::U64),
            ("best_similarity", FieldType::F64),
        ],
    ),
    ("stall_detected", &[("restart", FieldType::U64)]),
    (
        "explain_report",
        &[("observed_node_accesses", FieldType::U64)],
    ),
    ("stall_aborted", &[("restart", FieldType::U64)]),
    ("stagnation_reseed", &[("restart", FieldType::U64)]),
];

/// A schema violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// The line is not valid JSON.
    Json(JsonError),
    /// The line is valid JSON but not an object.
    NotAnObject,
    /// The object has no `"event"` string field.
    MissingEventField,
    /// The `"event"` value names no known event kind.
    UnknownEvent(String),
    /// A required field is missing.
    MissingField {
        /// The event kind.
        event: String,
        /// The missing field.
        field: String,
    },
    /// A field is present with the wrong JSON type.
    WrongType {
        /// The event kind.
        event: String,
        /// The offending field.
        field: String,
        /// The expected type, human-readable.
        expected: &'static str,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Json(e) => write!(f, "{e}"),
            SchemaError::NotAnObject => write!(f, "line is not a JSON object"),
            SchemaError::MissingEventField => write!(f, "missing \"event\" string field"),
            SchemaError::UnknownEvent(kind) => write!(f, "unknown event kind {kind:?}"),
            SchemaError::MissingField { event, field } => {
                write!(f, "event {event:?} missing required field {field:?}")
            }
            SchemaError::WrongType {
                event,
                field,
                expected,
            } => write!(f, "event {event:?} field {field:?} must be a {expected}"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// Validates one JSONL line; returns the event kind on success.
pub fn validate_line(line: &str) -> Result<&'static str, SchemaError> {
    let value = Json::parse(line).map_err(SchemaError::Json)?;
    if value.as_object().is_none() {
        return Err(SchemaError::NotAnObject);
    }
    let kind = value
        .get("event")
        .and_then(Json::as_str)
        .ok_or(SchemaError::MissingEventField)?;
    let (kind, required) = REQUIRED
        .iter()
        .find(|(k, _)| *k == kind)
        .map(|(k, req)| (*k, *req))
        .ok_or_else(|| SchemaError::UnknownEvent(kind.to_string()))?;
    for (field, ty) in required {
        match value.get(field) {
            None => {
                return Err(SchemaError::MissingField {
                    event: kind.to_string(),
                    field: field.to_string(),
                })
            }
            Some(v) if !ty.check(v) => {
                return Err(SchemaError::WrongType {
                    event: kind.to_string(),
                    field: field.to_string(),
                    expected: ty.name(),
                })
            }
            Some(_) => {}
        }
    }
    if let Some((_, optional)) = OPTIONAL.iter().find(|(k, _)| *k == kind) {
        for (field, ty) in *optional {
            if let Some(v) = value.get(field) {
                if !ty.check(v) {
                    return Err(SchemaError::WrongType {
                        event: kind.to_string(),
                        field: field.to_string(),
                        expected: ty.name(),
                    });
                }
            }
        }
    }
    Ok(kind)
}

/// Validates a whole JSONL document (empty lines are ignored); returns the
/// number of events on success, or the 1-based line number of the first
/// failure.
pub fn validate_jsonl(text: &str) -> Result<usize, (usize, SchemaError)> {
    let mut events = 0;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_line(line).map_err(|e| (i + 1, e))?;
        events += 1;
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::RunEvent;
    use crate::registry::MetricsRegistry;

    #[test]
    fn emitted_events_validate() {
        let events = vec![
            RunEvent::RunStart {
                algo: "GILS".into(),
                n_vars: 4,
                edges: 3,
                restarts: 1,
                threads: 0,
                seed: 1,
                budget_steps: None,
                budget_secs: Some(2.0),
            },
            RunEvent::Improvement {
                restart: None,
                step: 5,
                violations: 1,
                similarity: 0.66,
                elapsed_secs: 0.01,
            },
            RunEvent::Progress {
                restart: Some(2),
                step: 100,
                steps_per_sec: 9000.0,
                elapsed_secs: 0.011,
                best_violations: Some(0),
                best_similarity: Some(1.0),
                node_accesses: 77,
                cache_hits: 5,
                cache_misses: 2,
                resident_bytes: 4096,
            },
            RunEvent::Progress {
                restart: None,
                step: 100,
                steps_per_sec: 0.0,
                elapsed_secs: 0.0,
                best_violations: None,
                best_similarity: None,
                node_accesses: 0,
                cache_hits: 0,
                cache_misses: 0,
                resident_bytes: 0,
            },
            RunEvent::StallDetected {
                restart: None,
                step: 700,
                steps_since_improvement: 600,
                secs_since_improvement: 0.4,
                elapsed_secs: 0.5,
            },
            RunEvent::StallAborted {
                restart: Some(1),
                steps: 710,
                elapsed_secs: 0.51,
            },
            RunEvent::StagnationReseed {
                restart: Some(0),
                step: 340,
                rounds: 64,
                elapsed_secs: 0.2,
            },
            RunEvent::Metrics {
                snapshot: MetricsRegistry::new().snapshot(),
            },
            RunEvent::Phases { phases: vec![] },
            RunEvent::ExplainReport {
                report: crate::explain::ExplainReport {
                    model: "acyclic".into(),
                    expected_solutions: 1.0,
                    edges: vec![crate::explain::EdgeExplain {
                        a: 0,
                        b: 1,
                        predicate: "intersects".into(),
                        estimated_selectivity: 0.04,
                        observed_selectivity: Some(0.05),
                        observed_pairs: Some(2_000),
                    }],
                    vars: vec![crate::explain::VarExplain {
                        var: 0,
                        cardinality: 200,
                        avg_extent: 0.05,
                        expected_window_hits: 8.0,
                        predicted_accesses_per_query: 3.5,
                        observed_accesses: 42,
                        accesses_per_level: vec![32, 10],
                        tree: crate::explain::TreeQuality::default(),
                        grid: Some(crate::explain::GridQuality::default()),
                    }],
                    observed_node_accesses: Some(42),
                },
            },
            RunEvent::ResourceReport {
                report: {
                    let mut r = crate::resource::ResourceReport::new();
                    r.record("rtree.var000", 2048);
                    r
                },
            },
            RunEvent::RunEnd {
                best_violations: 1,
                best_similarity: 0.66,
                steps: 100,
                node_accesses: 42,
                local_maxima: 2,
                improvements: 1,
                restarts: 3,
                elapsed_secs: 0.1,
                proven_optimal: false,
            },
        ];
        for event in &events {
            assert_eq!(validate_line(&event.to_json()), Ok(event.kind()));
        }
    }

    #[test]
    fn rejects_unknown_event() {
        let err = validate_line(r#"{"event":"nope"}"#).unwrap_err();
        assert_eq!(err, SchemaError::UnknownEvent("nope".into()));
    }

    #[test]
    fn rejects_missing_and_mistyped_fields() {
        let err = validate_line(r#"{"event":"restart_start","restart":0}"#).unwrap_err();
        assert_eq!(
            err,
            SchemaError::MissingField {
                event: "restart_start".into(),
                field: "seed".into()
            }
        );
        let err = validate_line(r#"{"event":"restart_start","restart":0,"seed":-1}"#).unwrap_err();
        assert!(matches!(err, SchemaError::WrongType { .. }));
        // Optional field with the wrong type is still an error.
        let err = validate_line(
            r#"{"event":"improvement","step":1,"violations":0,"similarity":1,"elapsed_secs":0,"restart":"x"}"#,
        )
        .unwrap_err();
        assert!(matches!(err, SchemaError::WrongType { .. }));
    }

    #[test]
    fn rejects_non_json_and_non_objects() {
        assert!(matches!(
            validate_line("not json"),
            Err(SchemaError::Json(_))
        ));
        assert_eq!(validate_line("[1,2]"), Err(SchemaError::NotAnObject));
        assert_eq!(validate_line("{}"), Err(SchemaError::MissingEventField));
    }

    #[test]
    fn validate_jsonl_counts_events_and_reports_line_numbers() {
        let good = "{\"event\":\"phases\",\"phases\":[]}\n\n{\"event\":\"phases\",\"phases\":[]}\n";
        assert_eq!(validate_jsonl(good), Ok(2));
        let bad = "{\"event\":\"phases\",\"phases\":[]}\nbroken\n";
        assert_eq!(validate_jsonl(bad).unwrap_err().0, 2);
    }

    #[test]
    fn unknown_extra_fields_are_allowed() {
        assert!(validate_line(r#"{"event":"phases","phases":[],"extra":1}"#).is_ok());
    }
}
