//! Hierarchical phase timers: RAII wall-clock spans with per-phase call
//! counts and step attribution.
//!
//! A [`PhaseTimer`] aggregates time per *phase path* — nested span names
//! joined with `" > "`, e.g. `solve > restart[3] > find_best_value`. Spans
//! are opened with [`PhaseTimer::span`] and closed on drop (LIFO order).
//! [`PhaseTimer::add_steps`] attributes algorithm steps to the innermost
//! open span, so per-phase step throughput can be derived offline.
//!
//! Disabled timers (the default) never call [`Instant::now`]; every
//! operation is a single `Option` check.
//!
//! Wall-clock readings are inherently non-deterministic, so phase
//! snapshots are kept **out** of the deterministic metric reduction (see
//! [`crate::MetricsSnapshot`]); their `calls` and `steps` fields are
//! nevertheless exact counters.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug, Default)]
struct PhaseAgg {
    calls: u64,
    steps: u64,
    wall: Duration,
}

#[derive(Debug, Default)]
struct TimerState {
    /// Full paths of the currently open spans, outermost first.
    stack: Vec<String>,
    phases: BTreeMap<String, PhaseAgg>,
}

/// A hierarchical phase timer. Cloning shares the underlying storage.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimer {
    inner: Option<Arc<Mutex<TimerState>>>,
}

impl PhaseTimer {
    /// Creates an enabled timer.
    pub fn new() -> Self {
        PhaseTimer {
            inner: Some(Arc::new(Mutex::new(TimerState::default()))),
        }
    }

    /// Creates a disabled timer: spans and step attribution are no-ops.
    pub fn disabled() -> Self {
        PhaseTimer { inner: None }
    }

    /// `true` when timings are actually collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span named `name` nested under the currently open span (if
    /// any). The span closes when the returned guard drops; guards must be
    /// dropped in LIFO order.
    #[must_use = "the span is measured until the returned guard drops"]
    pub fn span(&self, name: &str) -> PhaseSpan {
        let Some(inner) = &self.inner else {
            return PhaseSpan { inner: None };
        };
        let mut state = inner.lock().expect("timer mutex");
        let path = match state.stack.last() {
            Some(parent) => format!("{parent} > {name}"),
            None => name.to_string(),
        };
        state.stack.push(path.clone());
        PhaseSpan {
            inner: Some(SpanInner {
                timer: Arc::clone(inner),
                path,
                start: Instant::now(),
            }),
        }
    }

    /// Attributes `n` algorithm steps to the innermost open span (or to
    /// the pseudo-phase `(no-phase)` when no span is open).
    ///
    /// The disabled fast path is one branch; the enabled body is outlined
    /// and `#[cold]` so callers' hot loops stay small.
    #[inline]
    pub fn add_steps(&self, n: u64) {
        if let Some(inner) = &self.inner {
            Self::add_steps_enabled(inner, n);
        }
    }

    #[cold]
    fn add_steps_enabled(inner: &Arc<Mutex<TimerState>>, n: u64) {
        let mut state = inner.lock().expect("timer mutex");
        let path = state
            .stack
            .last()
            .cloned()
            .unwrap_or_else(|| "(no-phase)".to_string());
        state.phases.entry(path).or_default().steps += n;
    }

    /// Freezes the per-phase aggregates, sorted by path. Open spans are
    /// not included until their guards drop.
    pub fn snapshot(&self) -> Vec<PhaseSnapshot> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let state = inner.lock().expect("timer mutex");
        state
            .phases
            .iter()
            .map(|(path, agg)| PhaseSnapshot {
                path: path.clone(),
                calls: agg.calls,
                steps: agg.steps,
                wall: agg.wall,
            })
            .collect()
    }
}

#[derive(Debug)]
struct SpanInner {
    timer: Arc<Mutex<TimerState>>,
    path: String,
    start: Instant,
}

/// RAII guard for one open phase span (see [`PhaseTimer::span`]).
#[derive(Debug)]
pub struct PhaseSpan {
    inner: Option<SpanInner>,
}

impl Drop for PhaseSpan {
    fn drop(&mut self) {
        if let Some(span) = self.inner.take() {
            let elapsed = span.start.elapsed();
            let mut state = span.timer.lock().expect("timer mutex");
            debug_assert_eq!(
                state.stack.last(),
                Some(&span.path),
                "phase spans must close in LIFO order"
            );
            state.stack.pop();
            let agg = state.phases.entry(span.path).or_default();
            agg.calls += 1;
            agg.wall += elapsed;
        }
    }
}

/// Frozen aggregate for one phase path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// `" > "`-joined span names, outermost first.
    pub path: String,
    /// Number of times the span closed.
    pub calls: u64,
    /// Steps attributed while this span was innermost.
    pub steps: u64,
    /// Total wall-clock time spent inside the span.
    pub wall: Duration,
}

/// Merges several phase-snapshot lists (e.g. one per portfolio restart)
/// into one, summing `calls`, `steps` and `wall` per path; the result is
/// sorted by path.
pub fn merge_phase_snapshots<I>(lists: I) -> Vec<PhaseSnapshot>
where
    I: IntoIterator<Item = Vec<PhaseSnapshot>>,
{
    let mut merged: BTreeMap<String, PhaseSnapshot> = BTreeMap::new();
    for list in lists {
        for snap in list {
            merged
                .entry(snap.path.clone())
                .and_modify(|agg| {
                    agg.calls += snap.calls;
                    agg.steps += snap.steps;
                    agg.wall += snap.wall;
                })
                .or_insert(snap);
        }
    }
    merged.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timer_is_a_no_op() {
        let timer = PhaseTimer::disabled();
        assert!(!timer.is_enabled());
        let span = timer.span("solve");
        timer.add_steps(10);
        drop(span);
        assert!(timer.snapshot().is_empty());
    }

    #[test]
    fn nested_spans_build_hierarchical_paths() {
        let timer = PhaseTimer::new();
        {
            let _solve = timer.span("solve");
            {
                let _r = timer.span("restart[0]");
                timer.add_steps(3);
            }
            {
                let _r = timer.span("restart[1]");
                timer.add_steps(4);
            }
        }
        let snaps = timer.snapshot();
        let paths: Vec<&str> = snaps.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(
            paths,
            vec!["solve", "solve > restart[0]", "solve > restart[1]"]
        );
        assert_eq!(snaps[1].calls, 1);
        assert_eq!(snaps[1].steps, 3);
        assert_eq!(snaps[2].steps, 4);
        assert_eq!(snaps[0].calls, 1);
        assert!(snaps[0].wall >= snaps[1].wall);
    }

    #[test]
    fn steps_without_open_span_go_to_no_phase() {
        let timer = PhaseTimer::new();
        timer.add_steps(7);
        let snaps = timer.snapshot();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].path, "(no-phase)");
        assert_eq!(snaps[0].steps, 7);
        assert_eq!(snaps[0].calls, 0);
    }

    #[test]
    fn repeated_spans_aggregate() {
        let timer = PhaseTimer::new();
        for _ in 0..5 {
            let _s = timer.span("fbv");
        }
        let snaps = timer.snapshot();
        assert_eq!(snaps[0].calls, 5);
    }

    #[test]
    fn merge_sums_per_path() {
        let make = |steps| {
            vec![PhaseSnapshot {
                path: "solve".into(),
                calls: 1,
                steps,
                wall: Duration::from_millis(steps),
            }]
        };
        let merged = merge_phase_snapshots([make(2), make(3)]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].calls, 2);
        assert_eq!(merged[0].steps, 5);
        assert_eq!(merged[0].wall, Duration::from_millis(5));
    }
}
