//! Anytime-curve capture: the paper's evaluation object.
//!
//! Figs. 10a–c and 11 of *Papadias & Arkoumanis, EDBT 2002* plot the best
//! similarity reached against consumed resources — time, steps and R*-tree
//! node accesses. [`AnytimeCurve`] folds a run's [`RunEvent::Improvement`]
//! / [`RunEvent::TracePoint`] stream (or a trace fed in directly) into a
//! monotone step function over those three axes and derives the two
//! summary statistics used for regression gating:
//!
//! * **quality AUC** — the area under the normalized similarity curve in
//!   `[0, 1]` (1.0 = the run was at similarity 1 from the first instant,
//!   0.0 = it never found anything). Computed per axis: the step axis is
//!   deterministic under a step budget, the wall axis is measured.
//! * **time/steps to similarity τ** — the first resource expenditure at
//!   which the curve reached a threshold τ, or `None` when it never did.
//!
//! Node accesses are not carried on individual trace points (the event
//! schema predates this module), so the access axis is derived by scaling
//! the step axis with the run's final `node_accesses / steps` ratio — an
//! approximation that is exact in the common case of index-driven
//! algorithms whose per-step access cost is roughly constant.

use crate::events::RunEvent;

/// One point of an anytime curve: the best similarity known after `step`
/// steps / `wall_ms` milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Steps consumed when this similarity was reached.
    pub step: u64,
    /// Milliseconds since the run started.
    pub wall_ms: f64,
    /// Best similarity from this point on (until the next point).
    pub similarity: f64,
}

/// A monotone similarity-vs-cost curve plus the run totals that normalize
/// it (see the module docs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnytimeCurve {
    points: Vec<CurvePoint>,
    total_steps: u64,
    total_node_accesses: u64,
    total_wall_ms: f64,
}

impl AnytimeCurve {
    /// An empty curve.
    pub fn new() -> Self {
        AnytimeCurve::default()
    }

    /// Records one observation. Non-improving observations (similarity not
    /// strictly above the current best) are folded away, keeping the curve
    /// strictly increasing in similarity and non-decreasing in both cost
    /// axes.
    pub fn record(&mut self, step: u64, wall_ms: f64, similarity: f64) {
        if let Some(last) = self.points.last() {
            if similarity <= last.similarity {
                return;
            }
            // Clamp non-monotone cost readings (clock skew across threads).
            let step = step.max(last.step);
            let wall_ms = wall_ms.max(last.wall_ms);
            self.points.push(CurvePoint {
                step,
                wall_ms,
                similarity,
            });
        } else {
            self.points.push(CurvePoint {
                step,
                wall_ms,
                similarity,
            });
        }
    }

    /// Folds one run event into the curve: `improvement` and `trace_point`
    /// become observations, `run_end` sets the normalization totals, and
    /// every other kind is ignored.
    pub fn observe(&mut self, event: &RunEvent) {
        match event {
            RunEvent::Improvement {
                step,
                similarity,
                elapsed_secs,
                ..
            }
            | RunEvent::TracePoint {
                step,
                similarity,
                elapsed_secs,
            } => self.record(*step, elapsed_secs * 1000.0, *similarity),
            RunEvent::RunEnd {
                steps,
                node_accesses,
                elapsed_secs,
                ..
            } => self.set_totals(*steps, *node_accesses, elapsed_secs * 1000.0),
            _ => {}
        }
    }

    /// Sets the run totals the curve is normalized against.
    pub fn set_totals(&mut self, steps: u64, node_accesses: u64, wall_ms: f64) {
        self.total_steps = steps;
        self.total_node_accesses = node_accesses;
        self.total_wall_ms = wall_ms;
    }

    /// The recorded points, in order.
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// Total steps the run consumed.
    pub fn total_steps(&self) -> u64 {
        self.total_steps
    }

    /// Total R*-tree node accesses the run consumed.
    pub fn total_node_accesses(&self) -> u64 {
        self.total_node_accesses
    }

    /// Total wall-clock milliseconds the run consumed.
    pub fn total_wall_ms(&self) -> f64 {
        self.total_wall_ms
    }

    /// The curve's final (best) similarity; `0.0` for an empty curve.
    pub fn final_similarity(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.similarity)
    }

    /// Best similarity known after `step` steps (step function; `0.0`
    /// before the first point).
    pub fn similarity_at_step(&self, step: u64) -> f64 {
        let mut sim = 0.0;
        for p in &self.points {
            if p.step <= step {
                sim = p.similarity;
            } else {
                break;
            }
        }
        sim
    }

    /// Best similarity known after `wall_ms` milliseconds.
    pub fn similarity_at_ms(&self, wall_ms: f64) -> f64 {
        let mut sim = 0.0;
        for p in &self.points {
            if p.wall_ms <= wall_ms {
                sim = p.similarity;
            } else {
                break;
            }
        }
        sim
    }

    /// Quality AUC over the **step** axis, normalized to `[0, 1]`.
    /// Deterministic under a step budget. A zero-step run degenerates to
    /// its final similarity.
    pub fn auc_steps(&self) -> f64 {
        self.auc_over(|p| p.step as f64, self.total_steps as f64)
    }

    /// Quality AUC over the **wall-clock** axis, normalized to `[0, 1]`.
    /// Measured, not deterministic.
    pub fn auc_wall(&self) -> f64 {
        self.auc_over(|p| p.wall_ms, self.total_wall_ms)
    }

    fn auc_over(&self, axis: impl Fn(&CurvePoint) -> f64, total: f64) -> f64 {
        if total <= 0.0 {
            return self.final_similarity();
        }
        let mut area = 0.0;
        for (i, p) in self.points.iter().enumerate() {
            let from = axis(p).min(total);
            let to = match self.points.get(i + 1) {
                Some(next) => axis(next).min(total),
                None => total,
            };
            area += p.similarity * (to - from);
        }
        (area / total).clamp(0.0, 1.0)
    }

    /// Steps consumed when similarity first reached `tau` (deterministic),
    /// or `None` if the run never did.
    pub fn steps_to(&self, tau: f64) -> Option<u64> {
        self.points
            .iter()
            .find(|p| p.similarity >= tau - 1e-12)
            .map(|p| p.step)
    }

    /// Wall-clock milliseconds elapsed when similarity first reached `tau`.
    pub fn time_to_ms(&self, tau: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.similarity >= tau - 1e-12)
            .map(|p| p.wall_ms)
    }

    /// Estimated node accesses consumed when similarity first reached
    /// `tau`, derived by scaling the step axis with the run's final
    /// accesses-per-step ratio (see the module docs).
    pub fn accesses_to(&self, tau: f64) -> Option<u64> {
        let steps = self.steps_to(tau)?;
        if self.total_steps == 0 {
            return Some(0);
        }
        let ratio = self.total_node_accesses as f64 / self.total_steps as f64;
        Some((steps as f64 * ratio).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(points: &[(u64, f64, f64)]) -> AnytimeCurve {
        let mut c = AnytimeCurve::new();
        for &(step, ms, sim) in points {
            c.record(step, ms, sim);
        }
        c
    }

    #[test]
    fn non_improving_points_are_folded_away() {
        let c = curve(&[(0, 0.0, 0.25), (5, 1.0, 0.25), (9, 2.0, 0.5)]);
        assert_eq!(c.points().len(), 2);
        assert_eq!(c.final_similarity(), 0.5);
        assert_eq!(c.points()[1].step, 9);
    }

    #[test]
    fn non_monotone_cost_readings_are_clamped() {
        let c = curve(&[(10, 5.0, 0.25), (8, 4.0, 0.5)]);
        assert_eq!(c.points()[1].step, 10);
        assert_eq!(c.points()[1].wall_ms, 5.0);
    }

    #[test]
    fn observe_folds_events_and_totals() {
        let mut c = AnytimeCurve::new();
        c.observe(&RunEvent::Improvement {
            restart: None,
            step: 2,
            violations: 1,
            similarity: 0.5,
            elapsed_secs: 0.001,
        });
        c.observe(&RunEvent::TracePoint {
            step: 6,
            similarity: 1.0,
            elapsed_secs: 0.004,
        });
        c.observe(&RunEvent::RestartStart {
            restart: 0,
            seed: 1,
        }); // ignored
        c.observe(&RunEvent::RunEnd {
            best_violations: 0,
            best_similarity: 1.0,
            steps: 10,
            node_accesses: 40,
            local_maxima: 0,
            improvements: 2,
            restarts: 1,
            elapsed_secs: 0.01,
            proven_optimal: false,
        });
        assert_eq!(c.points().len(), 2);
        assert_eq!(c.total_steps(), 10);
        assert_eq!(c.total_node_accesses(), 40);
        assert!((c.total_wall_ms() - 10.0).abs() < 1e-9);
        assert_eq!(c.points()[0].wall_ms, 1.0);
    }

    #[test]
    fn auc_steps_integrates_the_step_function() {
        // sim 0.5 over steps [0,5), 1.0 over [5,10) of a 10-step run:
        // AUC = (0.5·5 + 1.0·5)/10 = 0.75.
        let mut c = curve(&[(0, 0.0, 0.5), (5, 5.0, 1.0)]);
        c.set_totals(10, 100, 10.0);
        assert!((c.auc_steps() - 0.75).abs() < 1e-12);
        assert!((c.auc_wall() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn auc_before_first_point_counts_as_zero() {
        // Nothing known over [0,5): AUC = (0·5 + 1·5)/10 = 0.5.
        let mut c = curve(&[(5, 5.0, 1.0)]);
        c.set_totals(10, 0, 10.0);
        assert!((c.auc_steps() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_of_empty_or_zero_total_degenerates() {
        assert_eq!(AnytimeCurve::new().auc_steps(), 0.0);
        let c = curve(&[(0, 0.0, 0.8)]); // totals never set
        assert_eq!(c.auc_steps(), 0.8);
    }

    #[test]
    fn points_beyond_the_total_contribute_nothing() {
        let mut c = curve(&[(0, 0.0, 0.5), (20, 20.0, 1.0)]);
        c.set_totals(10, 0, 10.0);
        assert!((c.auc_steps() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn thresholds_report_first_crossing() {
        let mut c = curve(&[(0, 0.0, 0.25), (4, 2.0, 0.5), (8, 6.0, 1.0)]);
        c.set_totals(10, 50, 10.0);
        assert_eq!(c.steps_to(0.5), Some(4));
        assert_eq!(c.steps_to(0.2), Some(0));
        assert_eq!(c.time_to_ms(1.0), Some(6.0));
        assert_eq!(c.steps_to(1.1), None);
        // 8 steps · (50/10) accesses per step = 40.
        assert_eq!(c.accesses_to(1.0), Some(40));
        assert_eq!(c.accesses_to(1.1), None);
    }

    #[test]
    fn similarity_lookups_are_step_functions() {
        let c = curve(&[(2, 1.0, 0.5), (6, 3.0, 1.0)]);
        assert_eq!(c.similarity_at_step(1), 0.0);
        assert_eq!(c.similarity_at_step(2), 0.5);
        assert_eq!(c.similarity_at_step(7), 1.0);
        assert_eq!(c.similarity_at_ms(0.5), 0.0);
        assert_eq!(c.similarity_at_ms(1.0), 0.5);
        assert_eq!(c.similarity_at_ms(99.0), 1.0);
    }
}
