//! The `BENCH_<label>.json` performance-snapshot format.
//!
//! One snapshot records the pinned benchmark suite's performance
//! trajectory: per instance × algorithm, the **deterministic work
//! counters** (steps, node accesses, …, bit-identical across machines
//! under the suite's step budgets), the **measured wall-clock** metrics
//! (median of `reps` repetitions), the anytime curve with its quality-AUC
//! and time-to-τ summaries, and the per-phase timer breakdown.
//!
//! Like the JSONL run events, the format is schema-validated:
//! [`BenchSnapshot::parse`] is the executable schema (also run by the
//! `mwsj-schema-check` binary, which auto-detects snapshot files), and
//! `mwsj bench compare` consumes the parsed form. The prose schema lives
//! in `DESIGN.md` ("Benchmark snapshots").

use crate::curve::{AnytimeCurve, CurvePoint};
use crate::explain::ExplainReport;
use crate::json::{Json, JsonError};
use crate::timer::PhaseSnapshot;
use std::fmt;
use std::time::Duration;

/// The top-level `format` discriminator of snapshot files.
pub const SNAPSHOT_FORMAT: &str = "mwsj-bench-snapshot";
/// Current snapshot schema version.
pub const SNAPSHOT_VERSION: u64 = 1;

/// The similarity thresholds every snapshot reports `steps_to` /
/// `time_to_ms` for.
pub const TAUS: [f64; 3] = [0.5, 0.9, 1.0];

/// Formats a τ threshold as its canonical JSON map key (`"0.50"`).
pub fn tau_key(tau: f64) -> String {
    format!("{tau:.2}")
}

/// The top-level sections a snapshot document may contain; anything else
/// is rejected by [`BenchSnapshot::parse`] with an error naming the
/// offending section.
pub const SNAPSHOT_SECTIONS: [&str; 8] = [
    "format", "version", "label", "reps", "suite", "memory", "cache", "explain",
];

/// One suite snapshot: the pinned instances and their per-algorithm
/// records.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// Snapshot label (e.g. `"baseline"`, `"ci"`).
    pub label: String,
    /// Wall-clock repetitions each algorithm was run for.
    pub reps: u64,
    /// Per-instance records.
    pub instances: Vec<InstanceRecord>,
    /// Deterministic per-instance memory tables (the `memory` section;
    /// empty for snapshots written before it existed). Compared with
    /// exact equality by `mwsj bench compare`.
    pub memory: Vec<MemoryRecord>,
    /// Deterministic per-record cache-efficiency counters (the `cache`
    /// section; empty for snapshots written before it existed). Compared
    /// with exact equality by `mwsj bench compare`.
    pub cache: Vec<CacheRecord>,
    /// Deterministic per-instance workload explain reports (the `explain`
    /// section; empty for snapshots written before it existed): the
    /// pre-run estimate side only — selectivities, hit rates, predicted
    /// accesses, tree quality — a pure function of the pinned instance.
    /// Compared with exact equality by `mwsj bench compare`.
    pub explain: Vec<ExplainRecord>,
}

/// Deterministic pre-run explain report of one suite instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainRecord {
    /// The suite instance this report describes.
    pub instance: String,
    /// The estimate-side [`ExplainReport`] of the pinned instance.
    pub report: ExplainReport,
}

/// Deterministic memory footprint of one suite instance's resident
/// structures, component by component (`rtree.var000`, `flat_leaves.var000`,
/// …). Bytes are length-based (`MemoryFootprint` contract), so the same
/// pinned instance always reports the same table on every machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryRecord {
    /// The suite instance this table describes.
    pub instance: String,
    /// Component → bytes, ascending by component name.
    pub components: Vec<(String, u64)>,
    /// Sum over `components`.
    pub total_bytes: u64,
}

/// Deterministic window-cache efficiency counters of one instance ×
/// algorithm record. All-zero records (algorithms that run without the
/// cache) are still recorded so regressions that silently disable the
/// cache fail the gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheRecord {
    /// The suite instance.
    pub instance: String,
    /// The algorithm name.
    pub algo: String,
    /// Queries answered from the memoised result without a traversal.
    pub hits: u64,
    /// Queries that ran the index traversal.
    pub misses: u64,
    /// Misses caused by a neighbour-assignment change.
    pub invalidations_reassign: u64,
    /// Misses caused by a penalty-version bump alone.
    pub invalidations_penalty: u64,
    /// Cache resident bytes at run end (summed across merged restarts).
    pub bytes: u64,
}

/// One pinned suite instance and the algorithms measured on it.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceRecord {
    /// Stable instance name (e.g. `"chain-4x300-sol1"`).
    pub name: String,
    /// Query shape (`"chain"`, `"clique"`, …).
    pub shape: String,
    /// Number of query variables / datasets.
    pub n_vars: u64,
    /// Objects per dataset.
    pub cardinality: u64,
    /// Workload RNG seed.
    pub seed: u64,
    /// Per-algorithm measurements, in suite order.
    pub algos: Vec<AlgoRecord>,
}

/// Measurements of one algorithm on one instance.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgoRecord {
    /// Algorithm name (`"ILS"`, `"GILS"`, `"SEA"`, `"two-step"`).
    pub algo: String,
    /// Deterministic work counters, ascending by name. Compared with
    /// exact equality by `mwsj bench compare`.
    pub counters: Vec<(String, u64)>,
    /// Best similarity reached (deterministic under a step budget).
    pub best_similarity: f64,
    /// Quality AUC over the step axis (deterministic).
    pub auc_steps: f64,
    /// Steps to reach each τ of [`TAUS`] (`None` = never), keyed by
    /// [`tau_key`]. Deterministic.
    pub steps_to: Vec<(String, Option<u64>)>,
    /// Median wall-clock milliseconds across the repetitions. Measured.
    pub wall_ms_median: f64,
    /// Wall-clock milliseconds of every repetition, in run order.
    pub wall_ms_reps: Vec<f64>,
    /// Steps per second at the median wall time. Measured.
    pub steps_per_sec: f64,
    /// Quality AUC over the wall-clock axis. Measured.
    pub auc_wall: f64,
    /// Milliseconds to reach each τ of [`TAUS`]. Measured.
    pub time_to_ms: Vec<(String, Option<f64>)>,
    /// The anytime curve of the median-wall repetition.
    pub curve: Vec<CurvePoint>,
    /// Per-phase timer breakdown of the median-wall repetition.
    pub phases: Vec<PhaseSnapshot>,
}

impl AlgoRecord {
    /// Builds a record from a finished curve (with totals set) and the
    /// measured repetition wall times. `counters` may be in any order.
    pub fn from_curve(
        algo: &str,
        mut counters: Vec<(String, u64)>,
        best_similarity: f64,
        curve: &AnytimeCurve,
        wall_ms_reps: Vec<f64>,
        phases: Vec<PhaseSnapshot>,
    ) -> AlgoRecord {
        counters.sort();
        let wall_ms_median = median(&wall_ms_reps);
        let steps = curve.total_steps();
        AlgoRecord {
            algo: algo.to_string(),
            counters,
            best_similarity,
            auc_steps: curve.auc_steps(),
            steps_to: TAUS
                .iter()
                .map(|&tau| (tau_key(tau), curve.steps_to(tau)))
                .collect(),
            wall_ms_median,
            wall_ms_reps,
            steps_per_sec: if wall_ms_median > 0.0 {
                steps as f64 / (wall_ms_median / 1000.0)
            } else {
                0.0
            },
            auc_wall: curve.auc_wall(),
            time_to_ms: TAUS
                .iter()
                .map(|&tau| (tau_key(tau), curve.time_to_ms(tau)))
                .collect(),
            curve: curve.points().to_vec(),
            phases,
        }
    }

    /// Looks up a deterministic counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }
}

/// Median of measured values (mean of the middle two for even counts);
/// `0.0` when empty.
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite wall times"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// A snapshot parse/validation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The file is empty (or whitespace only).
    Empty,
    /// The file is not valid JSON — `trailing` is set when the input ends
    /// mid-document, which usually means a truncated file.
    Json {
        /// The underlying parse error.
        error: JsonError,
        /// `true` when the document appears cut off at the end.
        truncated: bool,
    },
    /// The JSON is valid but violates the snapshot schema.
    Schema(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Empty => write!(f, "empty snapshot file"),
            SnapshotError::Json { error, truncated } => {
                write!(f, "{error}")?;
                if *truncated {
                    write!(f, " — file appears truncated")?;
                }
                Ok(())
            }
            SnapshotError::Schema(msg) => write!(f, "snapshot schema violation: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn schema_err<T>(msg: impl Into<String>) -> Result<T, SnapshotError> {
    Err(SnapshotError::Schema(msg.into()))
}

impl BenchSnapshot {
    /// Serialises the snapshot as indented JSON (the on-disk
    /// `BENCH_<label>.json` form, trailing newline included).
    pub fn to_string_pretty(&self) -> String {
        let mut out = self.to_json().dump_pretty();
        out.push('\n');
        out
    }

    /// The snapshot as a JSON value tree.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("format".into(), Json::Str(SNAPSHOT_FORMAT.into())),
            ("version".into(), Json::Num(SNAPSHOT_VERSION as f64)),
            ("label".into(), Json::Str(self.label.clone())),
            ("reps".into(), Json::Num(self.reps as f64)),
            (
                "suite".into(),
                Json::Arr(self.instances.iter().map(instance_json).collect()),
            ),
            (
                "memory".into(),
                Json::Arr(self.memory.iter().map(memory_json).collect()),
            ),
            (
                "cache".into(),
                Json::Arr(self.cache.iter().map(cache_json).collect()),
            ),
            (
                "explain".into(),
                Json::Arr(self.explain.iter().map(explain_json).collect()),
            ),
        ])
    }

    /// Parses and schema-validates a snapshot document. This is the
    /// executable form of the schema: every required field must be present
    /// with the right type; unknown extra fields are allowed.
    pub fn parse(text: &str) -> Result<BenchSnapshot, SnapshotError> {
        if text.trim().is_empty() {
            return Err(SnapshotError::Empty);
        }
        let doc = Json::parse(text).map_err(|error| {
            let truncated = error.offset >= text.trim_end().len();
            SnapshotError::Json { error, truncated }
        })?;
        let top = doc
            .as_object()
            .ok_or_else(|| SnapshotError::Schema("snapshot must be a JSON object".into()))?;
        if let Some((unknown, _)) = top
            .iter()
            .find(|(k, _)| !SNAPSHOT_SECTIONS.contains(&k.as_str()))
        {
            return schema_err(format!(
                "unknown top-level section {unknown:?} (known sections: {})",
                SNAPSHOT_SECTIONS.join(", ")
            ));
        }
        let format = req_str(&doc, "format", "snapshot")?;
        if format != SNAPSHOT_FORMAT {
            return schema_err(format!(
                "\"format\" is {format:?}, expected {SNAPSHOT_FORMAT:?}"
            ));
        }
        let version = req_u64(&doc, "version", "snapshot")?;
        if version != SNAPSHOT_VERSION {
            return schema_err(format!(
                "unsupported snapshot version {version} (supported: {SNAPSHOT_VERSION})"
            ));
        }
        let label = req_str(&doc, "label", "snapshot")?.to_string();
        let reps = req_u64(&doc, "reps", "snapshot")?;
        let suite = doc
            .get("suite")
            .and_then(Json::as_array)
            .ok_or_else(|| SnapshotError::Schema("snapshot missing \"suite\" array".into()))?;
        if suite.is_empty() {
            return schema_err("\"suite\" must contain at least one instance");
        }
        let instances = suite
            .iter()
            .map(parse_instance)
            .collect::<Result<Vec<_>, _>>()?;
        // `memory` and `cache` are optional so pre-section snapshots stay
        // readable; when present they must be well-formed.
        let memory = match doc.get("memory") {
            None => Vec::new(),
            Some(section) => section
                .as_array()
                .ok_or_else(|| SnapshotError::Schema("\"memory\" must be an array".into()))?
                .iter()
                .map(parse_memory)
                .collect::<Result<Vec<_>, _>>()?,
        };
        let cache = match doc.get("cache") {
            None => Vec::new(),
            Some(section) => section
                .as_array()
                .ok_or_else(|| SnapshotError::Schema("\"cache\" must be an array".into()))?
                .iter()
                .map(parse_cache)
                .collect::<Result<Vec<_>, _>>()?,
        };
        let explain = match doc.get("explain") {
            None => Vec::new(),
            Some(section) => section
                .as_array()
                .ok_or_else(|| SnapshotError::Schema("\"explain\" must be an array".into()))?
                .iter()
                .map(parse_explain)
                .collect::<Result<Vec<_>, _>>()?,
        };
        Ok(BenchSnapshot {
            label,
            reps,
            instances,
            memory,
            cache,
            explain,
        })
    }

    /// `true` when `text` looks like a snapshot document rather than a
    /// JSONL event stream (used by `mwsj-schema-check` to auto-detect).
    pub fn sniff(text: &str) -> bool {
        Json::parse(text)
            .is_ok_and(|doc| doc.get("format").and_then(Json::as_str) == Some(SNAPSHOT_FORMAT))
    }

    /// Total number of algorithm records across all instances.
    pub fn algo_records(&self) -> usize {
        self.instances.iter().map(|i| i.algos.len()).sum()
    }

    /// Looks up an instance by name.
    pub fn instance(&self, name: &str) -> Option<&InstanceRecord> {
        self.instances.iter().find(|i| i.name == name)
    }
}

fn instance_json(inst: &InstanceRecord) -> Json {
    Json::Obj(vec![
        ("instance".into(), Json::Str(inst.name.clone())),
        ("shape".into(), Json::Str(inst.shape.clone())),
        ("n_vars".into(), Json::Num(inst.n_vars as f64)),
        ("cardinality".into(), Json::Num(inst.cardinality as f64)),
        ("seed".into(), Json::Num(inst.seed as f64)),
        (
            "algos".into(),
            Json::Arr(inst.algos.iter().map(algo_json).collect()),
        ),
    ])
}

fn algo_json(algo: &AlgoRecord) -> Json {
    let opt_u64 = |v: Option<u64>| v.map_or(Json::Null, |x| Json::Num(x as f64));
    let opt_f64 = |v: Option<f64>| v.map_or(Json::Null, Json::Num);
    Json::Obj(vec![
        ("algo".into(), Json::Str(algo.algo.clone())),
        (
            "counters".into(),
            Json::Obj(
                algo.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                    .collect(),
            ),
        ),
        ("best_similarity".into(), Json::Num(algo.best_similarity)),
        ("auc_steps".into(), Json::Num(algo.auc_steps)),
        (
            "steps_to".into(),
            Json::Obj(
                algo.steps_to
                    .iter()
                    .map(|(k, v)| (k.clone(), opt_u64(*v)))
                    .collect(),
            ),
        ),
        ("wall_ms_median".into(), Json::Num(algo.wall_ms_median)),
        (
            "wall_ms_reps".into(),
            Json::Arr(algo.wall_ms_reps.iter().map(|&v| Json::Num(v)).collect()),
        ),
        ("steps_per_sec".into(), Json::Num(algo.steps_per_sec)),
        ("auc_wall".into(), Json::Num(algo.auc_wall)),
        (
            "time_to_ms".into(),
            Json::Obj(
                algo.time_to_ms
                    .iter()
                    .map(|(k, v)| (k.clone(), opt_f64(*v)))
                    .collect(),
            ),
        ),
        (
            "curve".into(),
            Json::Arr(
                algo.curve
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("step".into(), Json::Num(p.step as f64)),
                            ("wall_ms".into(), Json::Num(p.wall_ms)),
                            ("similarity".into(), Json::Num(p.similarity)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "phases".into(),
            Json::Arr(
                algo.phases
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("path".into(), Json::Str(p.path.clone())),
                            ("calls".into(), Json::Num(p.calls as f64)),
                            ("steps".into(), Json::Num(p.steps as f64)),
                            ("wall_secs".into(), Json::Num(p.wall.as_secs_f64())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn memory_json(rec: &MemoryRecord) -> Json {
    Json::Obj(vec![
        ("instance".into(), Json::Str(rec.instance.clone())),
        (
            "components".into(),
            Json::Obj(
                rec.components
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                    .collect(),
            ),
        ),
        ("total_bytes".into(), Json::Num(rec.total_bytes as f64)),
    ])
}

fn cache_json(rec: &CacheRecord) -> Json {
    Json::Obj(vec![
        ("instance".into(), Json::Str(rec.instance.clone())),
        ("algo".into(), Json::Str(rec.algo.clone())),
        ("hits".into(), Json::Num(rec.hits as f64)),
        ("misses".into(), Json::Num(rec.misses as f64)),
        (
            "invalidations_reassign".into(),
            Json::Num(rec.invalidations_reassign as f64),
        ),
        (
            "invalidations_penalty".into(),
            Json::Num(rec.invalidations_penalty as f64),
        ),
        ("bytes".into(), Json::Num(rec.bytes as f64)),
    ])
}

fn explain_json(rec: &ExplainRecord) -> Json {
    let report = Json::parse(&format!("{{{}}}", rec.report.to_json_fields()))
        .expect("explain report serialisation is valid JSON");
    let mut fields = vec![("instance".into(), Json::Str(rec.instance.clone()))];
    if let Json::Obj(entries) = report {
        fields.extend(entries);
    }
    Json::Obj(fields)
}

fn parse_explain(doc: &Json) -> Result<ExplainRecord, SnapshotError> {
    let instance = req_str(doc, "instance", "explain record")?.to_string();
    let report = ExplainReport::from_json(doc).ok_or_else(|| {
        SnapshotError::Schema(format!(
            "explain record {instance:?} is missing a required report field"
        ))
    })?;
    Ok(ExplainRecord { instance, report })
}

fn parse_memory(doc: &Json) -> Result<MemoryRecord, SnapshotError> {
    let instance = req_str(doc, "instance", "memory record")?.to_string();
    let ctx = format!("memory record {instance:?}");
    let components_obj = req(doc, "components", &ctx)?
        .as_object()
        .ok_or_else(|| SnapshotError::Schema(format!("{ctx} \"components\" must be an object")))?;
    let mut components = Vec::with_capacity(components_obj.len());
    for (k, v) in components_obj {
        let v = v.as_u64().ok_or_else(|| {
            SnapshotError::Schema(format!(
                "{ctx} component {k:?} must be a non-negative integer"
            ))
        })?;
        components.push((k.clone(), v));
    }
    components.sort();
    Ok(MemoryRecord {
        total_bytes: req_u64(doc, "total_bytes", &ctx)?,
        instance,
        components,
    })
}

fn parse_cache(doc: &Json) -> Result<CacheRecord, SnapshotError> {
    let instance = req_str(doc, "instance", "cache record")?.to_string();
    let algo = req_str(doc, "algo", "cache record")?.to_string();
    let ctx = format!("cache record {instance}/{algo}");
    Ok(CacheRecord {
        hits: req_u64(doc, "hits", &ctx)?,
        misses: req_u64(doc, "misses", &ctx)?,
        invalidations_reassign: req_u64(doc, "invalidations_reassign", &ctx)?,
        invalidations_penalty: req_u64(doc, "invalidations_penalty", &ctx)?,
        bytes: req_u64(doc, "bytes", &ctx)?,
        instance,
        algo,
    })
}

fn req<'a>(doc: &'a Json, field: &str, ctx: &str) -> Result<&'a Json, SnapshotError> {
    doc.get(field)
        .ok_or_else(|| SnapshotError::Schema(format!("{ctx} missing required field {field:?}")))
}

fn req_str<'a>(doc: &'a Json, field: &str, ctx: &str) -> Result<&'a str, SnapshotError> {
    req(doc, field, ctx)?
        .as_str()
        .ok_or_else(|| SnapshotError::Schema(format!("{ctx} field {field:?} must be a string")))
}

fn req_u64(doc: &Json, field: &str, ctx: &str) -> Result<u64, SnapshotError> {
    req(doc, field, ctx)?.as_u64().ok_or_else(|| {
        SnapshotError::Schema(format!(
            "{ctx} field {field:?} must be a non-negative integer"
        ))
    })
}

fn req_f64(doc: &Json, field: &str, ctx: &str) -> Result<f64, SnapshotError> {
    req(doc, field, ctx)?
        .as_f64()
        .ok_or_else(|| SnapshotError::Schema(format!("{ctx} field {field:?} must be a number")))
}

fn parse_instance(doc: &Json) -> Result<InstanceRecord, SnapshotError> {
    let name = req_str(doc, "instance", "suite entry")?.to_string();
    let ctx = format!("instance {name:?}");
    let algos = req(doc, "algos", &ctx)?
        .as_array()
        .ok_or_else(|| SnapshotError::Schema(format!("{ctx} field \"algos\" must be an array")))?;
    if algos.is_empty() {
        return schema_err(format!("{ctx} has no algorithm records"));
    }
    Ok(InstanceRecord {
        shape: req_str(doc, "shape", &ctx)?.to_string(),
        n_vars: req_u64(doc, "n_vars", &ctx)?,
        cardinality: req_u64(doc, "cardinality", &ctx)?,
        seed: req_u64(doc, "seed", &ctx)?,
        algos: algos
            .iter()
            .map(|a| parse_algo(a, &name))
            .collect::<Result<Vec<_>, _>>()?,
        name,
    })
}

fn parse_algo(doc: &Json, instance: &str) -> Result<AlgoRecord, SnapshotError> {
    let algo = req_str(doc, "algo", "algo record")?.to_string();
    let ctx = format!("{instance}/{algo}");

    let counters_obj = req(doc, "counters", &ctx)?
        .as_object()
        .ok_or_else(|| SnapshotError::Schema(format!("{ctx} \"counters\" must be an object")))?;
    let mut counters = Vec::with_capacity(counters_obj.len());
    for (k, v) in counters_obj {
        let v = v.as_u64().ok_or_else(|| {
            SnapshotError::Schema(format!(
                "{ctx} counter {k:?} must be a non-negative integer"
            ))
        })?;
        counters.push((k.clone(), v));
    }
    counters.sort();

    let opt_map_u64 = |field: &str| -> Result<Vec<(String, Option<u64>)>, SnapshotError> {
        let obj = req(doc, field, &ctx)?
            .as_object()
            .ok_or_else(|| SnapshotError::Schema(format!("{ctx} {field:?} must be an object")))?;
        obj.iter()
            .map(|(k, v)| match v {
                Json::Null => Ok((k.clone(), None)),
                v => v.as_u64().map(|x| (k.clone(), Some(x))).ok_or_else(|| {
                    SnapshotError::Schema(format!("{ctx} {field}[{k:?}] must be integer or null"))
                }),
            })
            .collect()
    };
    let opt_map_f64 = |field: &str| -> Result<Vec<(String, Option<f64>)>, SnapshotError> {
        let obj = req(doc, field, &ctx)?
            .as_object()
            .ok_or_else(|| SnapshotError::Schema(format!("{ctx} {field:?} must be an object")))?;
        obj.iter()
            .map(|(k, v)| match v {
                Json::Null => Ok((k.clone(), None)),
                v => v.as_f64().map(|x| (k.clone(), Some(x))).ok_or_else(|| {
                    SnapshotError::Schema(format!("{ctx} {field}[{k:?}] must be number or null"))
                }),
            })
            .collect()
    };

    let wall_ms_reps = req(doc, "wall_ms_reps", &ctx)?
        .as_array()
        .ok_or_else(|| SnapshotError::Schema(format!("{ctx} \"wall_ms_reps\" must be an array")))?
        .iter()
        .map(|v| {
            v.as_f64().ok_or_else(|| {
                SnapshotError::Schema(format!("{ctx} \"wall_ms_reps\" entries must be numbers"))
            })
        })
        .collect::<Result<Vec<_>, _>>()?;

    let curve = req(doc, "curve", &ctx)?
        .as_array()
        .ok_or_else(|| SnapshotError::Schema(format!("{ctx} \"curve\" must be an array")))?
        .iter()
        .map(|p| {
            Ok(CurvePoint {
                step: req_u64(p, "step", &format!("{ctx} curve point"))?,
                wall_ms: req_f64(p, "wall_ms", &format!("{ctx} curve point"))?,
                similarity: req_f64(p, "similarity", &format!("{ctx} curve point"))?,
            })
        })
        .collect::<Result<Vec<_>, SnapshotError>>()?;

    let phases = req(doc, "phases", &ctx)?
        .as_array()
        .ok_or_else(|| SnapshotError::Schema(format!("{ctx} \"phases\" must be an array")))?
        .iter()
        .map(|p| {
            let pctx = format!("{ctx} phase");
            Ok(PhaseSnapshot {
                path: req_str(p, "path", &pctx)?.to_string(),
                calls: req_u64(p, "calls", &pctx)?,
                steps: req_u64(p, "steps", &pctx)?,
                wall: Duration::from_secs_f64(req_f64(p, "wall_secs", &pctx)?.max(0.0)),
            })
        })
        .collect::<Result<Vec<_>, SnapshotError>>()?;

    Ok(AlgoRecord {
        counters,
        best_similarity: req_f64(doc, "best_similarity", &ctx)?,
        auc_steps: req_f64(doc, "auc_steps", &ctx)?,
        steps_to: opt_map_u64("steps_to")?,
        wall_ms_median: req_f64(doc, "wall_ms_median", &ctx)?,
        wall_ms_reps,
        steps_per_sec: req_f64(doc, "steps_per_sec", &ctx)?,
        auc_wall: req_f64(doc, "auc_wall", &ctx)?,
        time_to_ms: opt_map_f64("time_to_ms")?,
        curve,
        phases,
        algo,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_snapshot(label: &str) -> BenchSnapshot {
        let mut curve = AnytimeCurve::new();
        curve.record(0, 0.1, 0.5);
        curve.record(40, 3.0, 1.0);
        curve.set_totals(100, 420, 9.0);
        let algo = AlgoRecord::from_curve(
            "ILS",
            vec![
                ("steps".into(), 100),
                ("node_accesses".into(), 420),
                ("best_violations".into(), 0),
            ],
            1.0,
            &curve,
            vec![9.0, 8.0, 11.0],
            vec![PhaseSnapshot {
                path: "ils".into(),
                calls: 1,
                steps: 100,
                wall: Duration::from_millis(9),
            }],
        );
        BenchSnapshot {
            label: label.to_string(),
            reps: 3,
            instances: vec![InstanceRecord {
                name: "chain-4x300-sol1".into(),
                shape: "chain".into(),
                n_vars: 4,
                cardinality: 300,
                seed: 101,
                algos: vec![algo],
            }],
            memory: vec![MemoryRecord {
                instance: "chain-4x300-sol1".into(),
                components: vec![
                    ("flat_leaves.var000".into(), 4096),
                    ("rtree.var000".into(), 8192),
                ],
                total_bytes: 12_288,
            }],
            cache: vec![CacheRecord {
                instance: "chain-4x300-sol1".into(),
                algo: "ILS".into(),
                hits: 37,
                misses: 63,
                invalidations_reassign: 12,
                invalidations_penalty: 0,
                bytes: 2048,
            }],
            explain: vec![ExplainRecord {
                instance: "chain-4x300-sol1".into(),
                report: crate::explain::tests::sample_report(false),
            }],
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = sample_snapshot("baseline");
        let text = snap.to_string_pretty();
        let parsed = BenchSnapshot::parse(&text).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(parsed.algo_records(), 1);
        assert!(BenchSnapshot::sniff(&text));
    }

    #[test]
    fn from_curve_computes_summaries() {
        let snap = sample_snapshot("x");
        let algo = &snap.instances[0].algos[0];
        assert_eq!(algo.wall_ms_median, 9.0);
        assert_eq!(algo.counter("steps"), Some(100));
        assert_eq!(algo.counter("missing"), None);
        // sim 0.5 over steps [0,40), 1.0 over [40,100): AUC = 0.8.
        assert!((algo.auc_steps - 0.8).abs() < 1e-12);
        assert_eq!(
            algo.steps_to,
            vec![
                ("0.50".to_string(), Some(0)),
                ("0.90".to_string(), Some(40)),
                ("1.00".to_string(), Some(40)),
            ]
        );
        assert!((algo.steps_per_sec - 100.0 / 0.009).abs() < 1e-6);
        // Counters came unsorted; the record sorts them.
        assert_eq!(algo.counters[0].0, "best_violations");
    }

    #[test]
    fn median_handles_even_odd_empty() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn parse_rejects_empty_and_truncated() {
        assert_eq!(BenchSnapshot::parse(""), Err(SnapshotError::Empty));
        assert_eq!(BenchSnapshot::parse("  \n"), Err(SnapshotError::Empty));
        let full = sample_snapshot("t").to_string_pretty();
        let cut = &full[..full.len() / 2];
        match BenchSnapshot::parse(cut) {
            Err(SnapshotError::Json { truncated, .. }) => assert!(truncated),
            other => panic!("expected truncated JSON error, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_wrong_format_and_version() {
        let err = BenchSnapshot::parse(r#"{"format":"other","version":1}"#).unwrap_err();
        assert!(matches!(err, SnapshotError::Schema(_)), "{err}");
        let err = BenchSnapshot::parse(
            r#"{"format":"mwsj-bench-snapshot","version":99,"label":"x","reps":1,"suite":[]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn parse_rejects_missing_fields_with_context() {
        let mut snap = sample_snapshot("x");
        snap.instances[0].algos[0].algo = "GILS".into();
        let text = snap
            .to_string_pretty()
            .replace("\"auc_steps\"", "\"renamed\"");
        let err = BenchSnapshot::parse(&text).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("auc_steps") && msg.contains("GILS"), "{msg}");
    }

    #[test]
    fn parse_rejects_unknown_top_level_section() {
        let text = sample_snapshot("x")
            .to_string_pretty()
            .replacen("\"memory\"", "\"memroy\"", 1);
        let err = BenchSnapshot::parse(&text).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("unknown top-level section \"memroy\"") && msg.contains("suite"),
            "{msg}"
        );
    }

    #[test]
    fn missing_memory_cache_explain_sections_parse_as_empty() {
        // Pre-section snapshots (no memory/cache/explain keys) stay readable.
        let mut snap = sample_snapshot("old");
        snap.memory.clear();
        snap.cache.clear();
        snap.explain.clear();
        // `explain` is the last section, so it carries no trailing comma.
        let text = snap.to_string_pretty().replace(
            ",\n  \"memory\": [],\n  \"cache\": [],\n  \"explain\": []",
            "",
        );
        assert!(
            !text.contains("\"memory\"") && !text.contains("\"explain\""),
            "{text}"
        );
        let parsed = BenchSnapshot::parse(&text).unwrap();
        assert!(parsed.memory.is_empty() && parsed.cache.is_empty() && parsed.explain.is_empty());
    }

    #[test]
    fn memory_cache_explain_sections_round_trip() {
        let snap = sample_snapshot("m");
        let parsed = BenchSnapshot::parse(&snap.to_string_pretty()).unwrap();
        assert_eq!(parsed.memory, snap.memory);
        assert_eq!(parsed.cache, snap.cache);
        assert_eq!(parsed.explain, snap.explain);
        assert_eq!(parsed.memory[0].total_bytes, 12_288);
        assert_eq!(parsed.cache[0].hits, 37);
        assert_eq!(parsed.explain[0].report.model, "acyclic");
        assert!(!parsed.explain[0].report.has_observed());
    }

    #[test]
    fn explain_record_missing_report_field_fails_parse() {
        let text = sample_snapshot("x")
            .to_string_pretty()
            .replace("\"expected_solutions\"", "\"renamed_solutions\"");
        let err = BenchSnapshot::parse(&text).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("explain record"), "{msg}");
    }

    #[test]
    fn sniff_rejects_jsonl_streams() {
        assert!(!BenchSnapshot::sniff(
            "{\"event\":\"phases\",\"phases\":[]}\n{\"event\":\"phases\",\"phases\":[]}\n"
        ));
        assert!(!BenchSnapshot::sniff(
            "{\"event\":\"phases\",\"phases\":[]}"
        ));
        assert!(!BenchSnapshot::sniff("not json"));
    }
}
